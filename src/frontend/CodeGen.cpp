//===- CodeGen.cpp --------------------------------------------*- C++ -*-===//

#include "frontend/CodeGen.h"

#include "support/ErrorHandling.h"

using namespace psc;

Type *CodeGen::lowerScalarType(ASTType Ty) {
  switch (Ty) {
  case ASTType::Int:
    return M->getTypes().getIntTy();
  case ASTType::Double:
    return M->getTypes().getFloatTy();
  case ASTType::Void:
    return M->getTypes().getVoidTy();
  }
  psc_unreachable("invalid AST type");
}

std::unique_ptr<Module> CodeGen::emit(const TranslationUnit &TU,
                                      const std::string &ModuleName) {
  M = std::make_unique<Module>(ModuleName);
  B = std::make_unique<IRBuilder>(*M);

  // Globals.
  for (const GlobalDecl &G : TU.Globals) {
    Type *Obj = lowerScalarType(G.Ty);
    if (G.IsArray)
      Obj = M->getTypes().getArrayTy(Obj, static_cast<uint64_t>(G.ArraySize));
    GlobalVariable *GV = M->createGlobal(G.Name, Obj);
    if (G.HasInit)
      GV->setScalarInit(G.Init);
  }

  declareFunctions(TU);

  for (const FunctionDecl &F : TU.Functions)
    emitFunction(F);

  // threadprivate / reducible registrations.
  for (const std::string &V : TU.ThreadPrivates)
    M->getParallelInfo().addThreadPrivate({V, M->getGlobal(V)});
  for (auto &[Var, Fn] : TU.Reducibles) {
    Directive D;
    D.Kind = DirectiveKind::Parallel; // module-scope marker directive
    ReductionClause R;
    R.Var = {Var, M->getGlobal(Var)};
    R.Op = ReduceOp::Custom;
    R.CustomReducer = M->getFunction(Fn);
    D.Reductions.push_back(R);
    M->getParallelInfo().addDirective(std::move(D));
  }

  return std::move(M);
}

void CodeGen::declareFunctions(const TranslationUnit &TU) {
  for (const FunctionDecl &F : TU.Functions) {
    std::vector<Type *> ParamTys;
    std::vector<std::string> ParamNames;
    for (const ParamDecl &P : F.Params) {
      Type *T = lowerScalarType(P.Ty);
      if (P.IsArray)
        T = M->getTypes().getPointerTy(T);
      ParamTys.push_back(T);
      ParamNames.push_back(P.Name);
    }
    M->createFunction(F.Name, lowerScalarType(F.RetTy), ParamTys, ParamNames);
  }
}

void CodeGen::collectAllocas(const Stmt *S) {
  if (!S)
    return;
  switch (S->getKind()) {
  case Stmt::StmtKind::Decl: {
    const auto *D = cast<DeclStmt>(S);
    Type *Obj = lowerScalarType(D->Ty);
    if (D->IsArray)
      Obj = M->getTypes().getArrayTy(Obj, static_cast<uint64_t>(D->ArraySize));
    LocalStorage[D->Name] = B->createAlloca(Obj, D->Name);
    return;
  }
  case Stmt::StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    collectAllocas(I->Then.get());
    collectAllocas(I->Else.get());
    return;
  }
  case Stmt::StmtKind::While:
    collectAllocas(cast<WhileStmt>(S)->Body.get());
    return;
  case Stmt::StmtKind::For:
    collectAllocas(cast<ForStmt>(S)->Body.get());
    return;
  case Stmt::StmtKind::Block:
    for (const StmtPtr &Sub : cast<BlockStmt>(S)->Stmts)
      collectAllocas(Sub.get());
    return;
  case Stmt::StmtKind::Pragma:
    collectAllocas(cast<PragmaStmt>(S)->Sub.get());
    return;
  default:
    return;
  }
}

void CodeGen::emitFunction(const FunctionDecl &F) {
  CurFn = M->getFunction(F.Name);
  CurDecl = &F;
  LocalStorage.clear();
  NextBlockId = 0;

  BasicBlock *Entry = CurFn->createBlock("entry");
  B->setInsertPoint(Entry);

  // Scalar parameters get a stack home; array parameters are used directly
  // as base pointers (PSC forbids reassigning them).
  for (unsigned I = 0; I < CurFn->getNumArgs(); ++I) {
    Argument *A = CurFn->getArg(I);
    const ParamDecl &P = F.Params[I];
    if (P.IsArray) {
      LocalStorage[P.Name] = A;
      continue;
    }
    AllocaInst *Slot = B->createAlloca(A->getType(), P.Name);
    B->createStore(A, Slot);
    LocalStorage[P.Name] = Slot;
  }

  // Hoist all local allocas into the entry block so loops do not
  // re-allocate (and so every variable has a single storage object —
  // required for dependence analysis and clause resolution).
  collectAllocas(F.Body.get());

  emitStmt(F.Body.get());

  // Implicit return at the end of the function if control can fall through.
  if (!B->getInsertBlock()->hasTerminator()) {
    if (F.RetTy == ASTType::Void)
      B->createRetVoid();
    else if (F.RetTy == ASTType::Int)
      B->createRet(M->getConstantInt(0));
    else
      B->createRet(M->getConstantFloat(0.0));
  }

  // Terminate any other unterminated blocks (e.g. after early returns in
  // both arms of an if): these are unreachable but must be well-formed.
  for (BasicBlock *BB : *CurFn) {
    if (!BB->hasTerminator()) {
      B->setInsertPoint(BB);
      if (F.RetTy == ASTType::Void)
        B->createRetVoid();
      else if (F.RetTy == ASTType::Int)
        B->createRet(M->getConstantInt(0));
      else
        B->createRet(M->getConstantFloat(0.0));
    }
  }
}

Value *CodeGen::lookupStorage(const std::string &Name) const {
  auto It = LocalStorage.find(Name);
  if (It != LocalStorage.end())
    return It->second;
  if (GlobalVariable *GV = M->getGlobal(Name))
    return GV;
  psc_unreachable("unresolved variable in codegen (Sema should have caught)");
}

Value *CodeGen::convert(Value *V, ASTType From, ASTType To) {
  if (From == To)
    return V;
  if (From == ASTType::Int && To == ASTType::Double)
    return B->createIntToFloat(V);
  if (From == ASTType::Double && To == ASTType::Int)
    return B->createFloatToInt(V);
  psc_unreachable("invalid conversion");
}

Value *CodeGen::emitExprAs(const Expr *E, ASTType Target) {
  Value *V = emitExpr(E);
  return convert(V, E->getASTType(), Target);
}

Value *CodeGen::emitBoolean(Value *V) {
  return B->createCmp(CmpInst::Predicate::NE, V, M->getConstantInt(0));
}

Value *CodeGen::emitAddress(const Expr *Target) {
  if (const auto *V = dyn_cast<VarExpr>(Target))
    return lookupStorage(V->Name);
  if (const auto *I = dyn_cast<IndexExpr>(Target)) {
    Value *Base = lookupStorage(I->Name);
    Value *Idx = emitExprAs(I->Index.get(), ASTType::Int);
    return B->createGEP(Base, Idx);
  }
  psc_unreachable("invalid assignment target");
}

Value *CodeGen::emitExpr(const Expr *E) {
  switch (E->getKind()) {
  case Expr::ExprKind::IntLit:
    return M->getConstantInt(cast<IntLitExpr>(E)->Value);
  case Expr::ExprKind::FloatLit:
    return M->getConstantFloat(cast<FloatLitExpr>(E)->Value);
  case Expr::ExprKind::Var: {
    const auto *V = cast<VarExpr>(E);
    if (V->IsArrayRef)
      return lookupStorage(V->Name); // base pointer (call argument)
    return B->createLoad(lookupStorage(V->Name));
  }
  case Expr::ExprKind::Index:
    return B->createLoad(emitAddress(E));
  case Expr::ExprKind::Binary: {
    const auto *Bin = cast<BinaryExpr>(E);
    using Op = BinaryExpr::Op;
    Op O = Bin->Operator;

    if (O == Op::LogicalAnd || O == Op::LogicalOr) {
      // Strict (non-short-circuit) logical ops; operands normalized to 0/1.
      Value *L = emitBoolean(emitExprAs(Bin->LHS.get(), ASTType::Int));
      Value *R = emitBoolean(emitExprAs(Bin->RHS.get(), ASTType::Int));
      return B->createBinary(O == Op::LogicalAnd ? BinaryInst::BinOp::And
                                                 : BinaryInst::BinOp::Or,
                             L, R);
    }

    ASTType LTy = Bin->LHS->getASTType();
    ASTType RTy = Bin->RHS->getASTType();
    ASTType OpTy = (LTy == ASTType::Double || RTy == ASTType::Double)
                       ? ASTType::Double
                       : ASTType::Int;

    Value *L = emitExprAs(Bin->LHS.get(), OpTy);
    Value *R = emitExprAs(Bin->RHS.get(), OpTy);

    switch (O) {
    case Op::Add:
      return B->createBinary(BinaryInst::BinOp::Add, L, R);
    case Op::Sub:
      return B->createBinary(BinaryInst::BinOp::Sub, L, R);
    case Op::Mul:
      return B->createBinary(BinaryInst::BinOp::Mul, L, R);
    case Op::Div:
      return B->createBinary(BinaryInst::BinOp::Div, L, R);
    case Op::Rem:
      return B->createBinary(BinaryInst::BinOp::Rem, L, R);
    case Op::BitAnd:
      return B->createBinary(BinaryInst::BinOp::And, L, R);
    case Op::BitOr:
      return B->createBinary(BinaryInst::BinOp::Or, L, R);
    case Op::BitXor:
      return B->createBinary(BinaryInst::BinOp::Xor, L, R);
    case Op::Shl:
      return B->createBinary(BinaryInst::BinOp::Shl, L, R);
    case Op::Shr:
      return B->createBinary(BinaryInst::BinOp::Shr, L, R);
    case Op::EQ:
      return B->createCmp(CmpInst::Predicate::EQ, L, R);
    case Op::NE:
      return B->createCmp(CmpInst::Predicate::NE, L, R);
    case Op::LT:
      return B->createCmp(CmpInst::Predicate::LT, L, R);
    case Op::LE:
      return B->createCmp(CmpInst::Predicate::LE, L, R);
    case Op::GT:
      return B->createCmp(CmpInst::Predicate::GT, L, R);
    case Op::GE:
      return B->createCmp(CmpInst::Predicate::GE, L, R);
    default:
      psc_unreachable("logical ops handled above");
    }
  }
  case Expr::ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->Operator == UnaryExpr::Op::Not) {
      Value *V = emitBoolean(emitExprAs(U->Sub.get(), ASTType::Int));
      return B->createBinary(BinaryInst::BinOp::Xor, V, M->getConstantInt(1));
    }
    Value *V = emitExpr(U->Sub.get());
    return B->createUnary(UnaryInst::UnOp::Neg, V);
  }
  case Expr::ExprKind::Call: {
    const auto *C = cast<CallExpr>(E);
    Function *Callee = M->getFunction(C->Callee);
    if (!Callee)
      Callee = M->getOrCreateIntrinsic(C->Callee);
    FunctionType *FT = Callee->getFunctionType();
    std::vector<Value *> Args;
    for (size_t I = 0; I < C->Args.size(); ++I) {
      const Expr *A = C->Args[I].get();
      Type *ParamTy = FT->getParams()[I];
      if (ParamTy->isPointer()) {
        Args.push_back(emitExpr(A)); // array base pointer
        continue;
      }
      ASTType Target = ParamTy->isFloat() ? ASTType::Double : ASTType::Int;
      Args.push_back(emitExprAs(A, Target));
    }
    return B->createCall(Callee, std::move(Args));
  }
  }
  psc_unreachable("invalid expression kind");
}

void CodeGen::emitStmt(const Stmt *S) {
  if (!S)
    return;
  // Stop emitting into a terminated block (code after return).
  if (B->getInsertBlock()->hasTerminator())
    return;

  switch (S->getKind()) {
  case Stmt::StmtKind::Decl: {
    const auto *D = cast<DeclStmt>(S);
    if (D->Init) {
      Value *V = emitExprAs(D->Init.get(), D->Ty);
      B->createStore(V, LocalStorage.at(D->Name));
    }
    return;
  }
  case Stmt::StmtKind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    ASTType TargetTy = A->Target->getASTType();
    Value *Addr = emitAddress(A->Target.get());
    Value *RHS = emitExprAs(A->Value.get(), TargetTy);
    if (A->Operator != AssignStmt::Op::Set) {
      Value *Old = B->createLoad(Addr);
      BinaryInst::BinOp Op;
      switch (A->Operator) {
      case AssignStmt::Op::Add:
        Op = BinaryInst::BinOp::Add;
        break;
      case AssignStmt::Op::Sub:
        Op = BinaryInst::BinOp::Sub;
        break;
      case AssignStmt::Op::Mul:
        Op = BinaryInst::BinOp::Mul;
        break;
      case AssignStmt::Op::Div:
        Op = BinaryInst::BinOp::Div;
        break;
      default:
        psc_unreachable("Set handled above");
      }
      RHS = B->createBinary(Op, Old, RHS);
    }
    B->createStore(RHS, Addr);
    return;
  }
  case Stmt::StmtKind::ExprStmt:
    emitExpr(cast<ExprStmt>(S)->E.get());
    return;
  case Stmt::StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    Value *Cond = emitExprAs(I->Cond.get(), ASTType::Int);
    BasicBlock *ThenBB = CurFn->createBlock(blockName("if.then"));
    BasicBlock *MergeBB = CurFn->createBlock(blockName("if.end"));
    BasicBlock *ElseBB =
        I->Else ? CurFn->createBlock(blockName("if.else")) : MergeBB;
    B->createCondBr(Cond, ThenBB, ElseBB);

    B->setInsertPoint(ThenBB);
    emitStmt(I->Then.get());
    if (!B->getInsertBlock()->hasTerminator())
      B->createBr(MergeBB);

    if (I->Else) {
      B->setInsertPoint(ElseBB);
      emitStmt(I->Else.get());
      if (!B->getInsertBlock()->hasTerminator())
        B->createBr(MergeBB);
    }
    B->setInsertPoint(MergeBB);
    return;
  }
  case Stmt::StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    BasicBlock *Header = CurFn->createBlock(blockName("while.header"));
    BasicBlock *Body = CurFn->createBlock(blockName("while.body"));
    BasicBlock *Exit = CurFn->createBlock(blockName("while.exit"));
    B->createBr(Header);

    B->setInsertPoint(Header);
    Value *Cond = emitExprAs(W->Cond.get(), ASTType::Int);
    B->createCondBr(Cond, Body, Exit);

    B->setInsertPoint(Body);
    emitStmt(W->Body.get());
    if (!B->getInsertBlock()->hasTerminator())
      B->createBr(Header);

    B->setInsertPoint(Exit);
    return;
  }
  case Stmt::StmtKind::For: {
    const auto *F = cast<ForStmt>(S);
    Value *Counter = LocalStorage.count(F->Counter)
                         ? LocalStorage.at(F->Counter)
                         : lookupStorage(F->Counter);

    // Preheader: initialize the counter.
    Value *Init = emitExprAs(F->Init.get(), ASTType::Int);
    B->createStore(Init, Counter);

    BasicBlock *Header = CurFn->createBlock(blockName("for.header"));
    BasicBlock *Body = CurFn->createBlock(blockName("for.body"));
    BasicBlock *Latch = CurFn->createBlock(blockName("for.latch"));
    BasicBlock *Exit = CurFn->createBlock(blockName("for.exit"));
    B->createBr(Header);

    B->setInsertPoint(Header);
    Value *IV = B->createLoad(Counter);
    Value *Bound = emitExprAs(F->Bound.get(), ASTType::Int);
    CmpInst::Predicate Pred;
    switch (F->Rel) {
    case BinaryExpr::Op::LT:
      Pred = CmpInst::Predicate::LT;
      break;
    case BinaryExpr::Op::LE:
      Pred = CmpInst::Predicate::LE;
      break;
    case BinaryExpr::Op::GT:
      Pred = CmpInst::Predicate::GT;
      break;
    case BinaryExpr::Op::GE:
      Pred = CmpInst::Predicate::GE;
      break;
    case BinaryExpr::Op::NE:
      Pred = CmpInst::Predicate::NE;
      break;
    default:
      psc_unreachable("parser guarantees a comparison");
    }
    Value *Cond = B->createCmp(Pred, IV, Bound);
    B->createCondBr(Cond, Body, Exit);

    B->setInsertPoint(Body);
    emitStmt(F->Body.get());
    if (!B->getInsertBlock()->hasTerminator())
      B->createBr(Latch);

    B->setInsertPoint(Latch);
    Value *IV2 = B->createLoad(Counter);
    Value *Step = emitExprAs(F->Step.get(), ASTType::Int);
    Value *Next = B->createBinary(F->StepIsAdd ? BinaryInst::BinOp::Add
                                               : BinaryInst::BinOp::Sub,
                                  IV2, Step);
    B->createStore(Next, Counter);
    B->createBr(Header);

    B->setInsertPoint(Exit);

    // Record canonical-loop metadata for the dependence tests.
    ForLoopMeta Meta;
    Meta.Header = Header;
    Meta.CounterStorage = Counter;
    const auto *StepLit = dyn_cast<IntLitExpr>(F->Step.get());
    Meta.Canonical = StepLit != nullptr;
    Meta.Step = StepLit ? (F->StepIsAdd ? StepLit->Value : -StepLit->Value)
                        : 0;
    if (const auto *InitLit = dyn_cast<IntLitExpr>(F->Init.get())) {
      Meta.HasConstInit = true;
      Meta.InitVal = InitLit->Value;
    }
    if (const auto *BoundLit = dyn_cast<IntLitExpr>(F->Bound.get())) {
      Meta.HasConstBound = true;
      Meta.BoundVal = BoundLit->Value;
    }
    switch (F->Rel) {
    case BinaryExpr::Op::LT:
      Meta.RelKind = 0;
      break;
    case BinaryExpr::Op::LE:
      Meta.RelKind = 1;
      break;
    case BinaryExpr::Op::GT:
      Meta.RelKind = 2;
      break;
    case BinaryExpr::Op::GE:
      Meta.RelKind = 3;
      break;
    default:
      Meta.RelKind = 4;
      break;
    }
    M->getParallelInfo().addForLoopMeta(Meta);

    LastLoopHeader = Header;
    return;
  }
  case Stmt::StmtKind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    if (!R->Value) {
      B->createRetVoid();
      return;
    }
    ASTType RetTy = CurDecl->RetTy;
    B->createRet(emitExprAs(R->Value.get(), RetTy));
    return;
  }
  case Stmt::StmtKind::Block:
    for (const StmtPtr &Sub : cast<BlockStmt>(S)->Stmts)
      emitStmt(Sub.get());
    return;
  case Stmt::StmtKind::Pragma:
    emitPragma(*cast<PragmaStmt>(S));
    return;
  case Stmt::StmtKind::Barrier: {
    Directive D;
    D.Kind = DirectiveKind::Barrier;
    M->getParallelInfo().addDirective(std::move(D));
    B->createIntrinsicCall(intrinsics::BarrierMarker, {});
    return;
  }
  case Stmt::StmtKind::Spawn: {
    // Cilk-style spawn (paper Appendix A): the call becomes a Task region
    // whose hierarchical SESE node the PS-PDG builder creates; the spawned
    // strand may overlap the continuation until the next sync.
    const auto *Sp = cast<SpawnStmt>(S);
    Directive D;
    D.Kind = DirectiveKind::Task;
    unsigned Id = M->getParallelInfo().addDirective(std::move(D));
    B->createIntrinsicCall(intrinsics::RegionBegin,
                           {M->getConstantInt(static_cast<int64_t>(Id))});
    emitExpr(Sp->Call.get());
    B->createIntrinsicCall(intrinsics::RegionEnd,
                           {M->getConstantInt(static_cast<int64_t>(Id))});
    return;
  }
  case Stmt::StmtKind::Sync: {
    Directive D;
    D.Kind = DirectiveKind::TaskWait;
    M->getParallelInfo().addDirective(std::move(D));
    B->createIntrinsicCall(intrinsics::TaskWaitMarker, {});
    return;
  }
  }
}

Directive CodeGen::lowerDirective(const PragmaDirective &D) {
  Directive Out;
  Out.Kind = D.Kind;
  Out.CriticalName = D.CriticalName;
  Out.NoWait = D.NoWait;
  Out.HasOrderedClause = D.HasOrderedClause;
  Out.ChunkSize = D.ChunkSize;

  auto Resolve = [&](const std::string &Name) -> VarRef {
    return {Name, lookupStorage(Name)};
  };

  for (const std::string &V : D.Privates)
    Out.Privates.push_back(Resolve(V));
  for (const std::string &V : D.FirstPrivates)
    Out.LiveOuts.push_back({Resolve(V), LiveOutPolicy::First});
  for (const std::string &V : D.LastPrivates)
    Out.LiveOuts.push_back({Resolve(V), LiveOutPolicy::Last});
  for (const std::string &V : D.Relaxed)
    Out.LiveOuts.push_back({Resolve(V), LiveOutPolicy::Any});
  for (const PragmaDirective::Reduction &R : D.Reductions) {
    ReductionClause RC;
    RC.Var = Resolve(R.Var);
    if (R.OpName == "+")
      RC.Op = ReduceOp::Add;
    else if (R.OpName == "*")
      RC.Op = ReduceOp::Mul;
    else if (R.OpName == "min")
      RC.Op = ReduceOp::Min;
    else if (R.OpName == "max")
      RC.Op = ReduceOp::Max;
    else {
      RC.Op = ReduceOp::Custom;
      RC.CustomReducer = M->getFunction(R.OpName);
    }
    Out.Reductions.push_back(std::move(RC));
  }
  return Out;
}

void CodeGen::emitPragma(const PragmaStmt &P) {
  const PragmaDirective &D = P.Directive;
  Directive Lowered = lowerDirective(D);

  if (D.Kind == DirectiveKind::ParallelFor || D.Kind == DirectiveKind::For) {
    emitStmt(P.Sub.get());
    Lowered.LoopHeader = LastLoopHeader;
    M->getParallelInfo().addDirective(std::move(Lowered));
    return;
  }

  // Region directive: bracket the sub-statement with marker calls carrying
  // the directive id.
  unsigned Id = M->getParallelInfo().addDirective(std::move(Lowered));
  B->createIntrinsicCall(intrinsics::RegionBegin,
                         {M->getConstantInt(static_cast<int64_t>(Id))});
  emitStmt(P.Sub.get());
  if (!B->getInsertBlock()->hasTerminator())
    B->createIntrinsicCall(intrinsics::RegionEnd,
                           {M->getConstantInt(static_cast<int64_t>(Id))});
}
