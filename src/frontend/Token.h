//===- Token.h - PSC lexical tokens ------------------------------*- C++ -*-===//
///
/// \file
/// Token kinds produced by the PSC lexer. Pragma lines (`#pragma psc ...`)
/// are tokenized in-line: the lexer emits PragmaStart at `#pragma psc` and
/// PragmaEnd at the first newline afterwards, so the parser consumes
/// directives with ordinary lookahead.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_FRONTEND_TOKEN_H
#define PSPDG_FRONTEND_TOKEN_H

#include <cstdint>
#include <string>

namespace psc {

enum class TokenKind {
  // Literals and identifiers.
  Identifier,
  IntLiteral,
  FloatLiteral,

  // Keywords.
  KwInt,
  KwDouble,
  KwVoid,
  KwIf,
  KwElse,
  KwFor,
  KwWhile,
  KwReturn,
  KwSpawn,
  KwSync,

  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  Colon,

  // Operators.
  Assign,     // =
  PlusAssign, // +=
  MinusAssign,
  StarAssign,
  SlashAssign,
  PlusPlus,
  MinusMinus,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  AmpAmp,
  PipePipe,
  Amp,
  Pipe,
  Caret,
  Shl,
  Shr,
  Bang,
  EqEq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,

  // Pragmas.
  PragmaStart, // '#pragma psc'
  PragmaEnd,   // end-of-line inside a pragma

  Eof,
  Error
};

/// One lexed token with source position (1-based line/column).
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;
  int64_t IntValue = 0;
  double FloatValue = 0.0;
  unsigned Line = 0;
  unsigned Column = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

/// Mnemonic for diagnostics ("identifier", "'('", ...).
const char *tokenKindName(TokenKind K);

} // namespace psc

#endif // PSPDG_FRONTEND_TOKEN_H
