//===- Frontend.h - One-call PSC → IR compilation ---------------*- C++ -*-===//
///
/// \file
/// Convenience driver: source text → verified Module (or diagnostics).
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_FRONTEND_FRONTEND_H
#define PSPDG_FRONTEND_FRONTEND_H

#include "ir/Module.h"

#include <memory>
#include <string>
#include <vector>

namespace psc {

/// Result of compiling a PSC source buffer.
struct CompileResult {
  std::unique_ptr<Module> M;              ///< Null on failure.
  std::vector<std::string> Diagnostics;   ///< Parse/sema/verifier messages.

  bool ok() const { return M != nullptr; }
};

/// Lexes, parses, type-checks, lowers, and verifies \p Source.
CompileResult compileSource(const std::string &Source,
                            const std::string &ModuleName = "psc");

/// Like compileSource but aborts with the diagnostics on failure —
/// convenient for tests, benches, and the built-in workloads, which are
/// expected to always compile.
std::unique_ptr<Module> compileOrDie(const std::string &Source,
                                     const std::string &ModuleName = "psc");

} // namespace psc

#endif // PSPDG_FRONTEND_FRONTEND_H
