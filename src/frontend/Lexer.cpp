//===- Lexer.cpp ----------------------------------------------*- C++ -*-===//

#include "frontend/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <map>

using namespace psc;

const char *psc::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::FloatLiteral:
    return "float literal";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwDouble:
    return "'double'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwSpawn:
    return "'spawn'";
  case TokenKind::KwSync:
    return "'sync'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::PlusAssign:
    return "'+='";
  case TokenKind::MinusAssign:
    return "'-='";
  case TokenKind::StarAssign:
    return "'*='";
  case TokenKind::SlashAssign:
    return "'/='";
  case TokenKind::PlusPlus:
    return "'++'";
  case TokenKind::MinusMinus:
    return "'--'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::Pipe:
    return "'|'";
  case TokenKind::Caret:
    return "'^'";
  case TokenKind::Shl:
    return "'<<'";
  case TokenKind::Shr:
    return "'>>'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::PragmaStart:
    return "'#pragma psc'";
  case TokenKind::PragmaEnd:
    return "end of pragma";
  case TokenKind::Eof:
    return "end of file";
  case TokenKind::Error:
    return "error";
  }
  return "unknown";
}

Lexer::Lexer(std::string Src) : Source(std::move(Src)) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  while (Pos < Source.size()) {
    char C = peek();
    if (C == '\n' && InPragma)
      return; // pragma terminator is significant
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (Pos < Source.size() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (Pos < Source.size()) {
        advance();
        advance();
      }
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind K, std::string Text) {
  Token T;
  T.Kind = K;
  T.Text = std::move(Text);
  T.Line = Line;
  T.Column = Column;
  return T;
}

Token Lexer::errorToken(const std::string &Msg) {
  Token T = makeToken(TokenKind::Error, Msg);
  return T;
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  if (Pos >= Source.size()) {
    if (InPragma) {
      InPragma = false;
      return makeToken(TokenKind::PragmaEnd, "");
    }
    return makeToken(TokenKind::Eof, "");
  }

  unsigned TokLine = Line, TokCol = Column;
  char C = peek();

  if (C == '\n' && InPragma) {
    advance();
    InPragma = false;
    Token T = makeToken(TokenKind::PragmaEnd, "");
    T.Line = TokLine;
    T.Column = TokCol;
    return T;
  }

  auto finish = [&](Token T) {
    T.Line = TokLine;
    T.Column = TokCol;
    return T;
  };

  // Pragma start: '#pragma psc'.
  if (C == '#') {
    advance();
    skipWhitespaceAndComments();
    std::string Word;
    while (std::isalpha(static_cast<unsigned char>(peek())))
      Word += advance();
    if (Word != "pragma")
      return finish(errorToken("expected 'pragma' after '#'"));
    skipWhitespaceAndComments();
    Word.clear();
    while (std::isalpha(static_cast<unsigned char>(peek())))
      Word += advance();
    if (Word != "psc")
      return finish(errorToken("expected 'psc' after '#pragma'"));
    InPragma = true;
    return finish(makeToken(TokenKind::PragmaStart, "#pragma psc"));
  }

  // Identifiers and keywords.
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Word;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      Word += advance();
    static const std::map<std::string, TokenKind> Keywords = {
        {"int", TokenKind::KwInt},       {"double", TokenKind::KwDouble},
        {"void", TokenKind::KwVoid},     {"if", TokenKind::KwIf},
        {"else", TokenKind::KwElse},     {"for", TokenKind::KwFor},
        {"while", TokenKind::KwWhile},   {"return", TokenKind::KwReturn},
        {"spawn", TokenKind::KwSpawn},   {"sync", TokenKind::KwSync},
    };
    auto It = Keywords.find(Word);
    if (It != Keywords.end())
      return finish(makeToken(It->second, Word));
    return finish(makeToken(TokenKind::Identifier, Word));
  }

  // Numbers.
  if (std::isdigit(static_cast<unsigned char>(C))) {
    std::string Num;
    bool IsFloat = false;
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Num += advance();
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      IsFloat = true;
      Num += advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Num += advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      size_t Save = Pos;
      std::string Exp;
      Exp += advance();
      if (peek() == '+' || peek() == '-')
        Exp += advance();
      if (std::isdigit(static_cast<unsigned char>(peek()))) {
        while (std::isdigit(static_cast<unsigned char>(peek())))
          Exp += advance();
        Num += Exp;
        IsFloat = true;
      } else {
        Pos = Save; // not an exponent
      }
    }
    Token T = makeToken(IsFloat ? TokenKind::FloatLiteral
                                : TokenKind::IntLiteral,
                        Num);
    if (IsFloat)
      T.FloatValue = std::strtod(Num.c_str(), nullptr);
    else
      T.IntValue = std::strtoll(Num.c_str(), nullptr, 10);
    return finish(T);
  }

  advance();
  switch (C) {
  case '(':
    return finish(makeToken(TokenKind::LParen, "("));
  case ')':
    return finish(makeToken(TokenKind::RParen, ")"));
  case '{':
    return finish(makeToken(TokenKind::LBrace, "{"));
  case '}':
    return finish(makeToken(TokenKind::RBrace, "}"));
  case '[':
    return finish(makeToken(TokenKind::LBracket, "["));
  case ']':
    return finish(makeToken(TokenKind::RBracket, "]"));
  case ';':
    return finish(makeToken(TokenKind::Semicolon, ";"));
  case ',':
    return finish(makeToken(TokenKind::Comma, ","));
  case ':':
    return finish(makeToken(TokenKind::Colon, ":"));
  case '+':
    if (match('+'))
      return finish(makeToken(TokenKind::PlusPlus, "++"));
    if (match('='))
      return finish(makeToken(TokenKind::PlusAssign, "+="));
    return finish(makeToken(TokenKind::Plus, "+"));
  case '-':
    if (match('-'))
      return finish(makeToken(TokenKind::MinusMinus, "--"));
    if (match('='))
      return finish(makeToken(TokenKind::MinusAssign, "-="));
    return finish(makeToken(TokenKind::Minus, "-"));
  case '*':
    if (match('='))
      return finish(makeToken(TokenKind::StarAssign, "*="));
    return finish(makeToken(TokenKind::Star, "*"));
  case '/':
    if (match('='))
      return finish(makeToken(TokenKind::SlashAssign, "/="));
    return finish(makeToken(TokenKind::Slash, "/"));
  case '%':
    return finish(makeToken(TokenKind::Percent, "%"));
  case '&':
    if (match('&'))
      return finish(makeToken(TokenKind::AmpAmp, "&&"));
    return finish(makeToken(TokenKind::Amp, "&"));
  case '|':
    if (match('|'))
      return finish(makeToken(TokenKind::PipePipe, "||"));
    return finish(makeToken(TokenKind::Pipe, "|"));
  case '^':
    return finish(makeToken(TokenKind::Caret, "^"));
  case '!':
    if (match('='))
      return finish(makeToken(TokenKind::NotEq, "!="));
    return finish(makeToken(TokenKind::Bang, "!"));
  case '=':
    if (match('='))
      return finish(makeToken(TokenKind::EqEq, "=="));
    return finish(makeToken(TokenKind::Assign, "="));
  case '<':
    if (match('<'))
      return finish(makeToken(TokenKind::Shl, "<<"));
    if (match('='))
      return finish(makeToken(TokenKind::LessEq, "<="));
    return finish(makeToken(TokenKind::Less, "<"));
  case '>':
    if (match('>'))
      return finish(makeToken(TokenKind::Shr, ">>"));
    if (match('='))
      return finish(makeToken(TokenKind::GreaterEq, ">="));
    return finish(makeToken(TokenKind::Greater, ">"));
  default:
    break;
  }
  return finish(errorToken(std::string("unexpected character '") + C + "'"));
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Token T = next();
    bool Done = T.is(TokenKind::Eof) || T.is(TokenKind::Error);
    Tokens.push_back(std::move(T));
    if (Done)
      break;
  }
  return Tokens;
}
