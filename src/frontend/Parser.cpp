//===- Parser.cpp ---------------------------------------------*- C++ -*-===//

#include "frontend/Parser.h"

#include <cassert>

using namespace psc;

Parser::Parser(std::vector<Token> Toks) : Tokens(std::move(Toks)) {
  assert(!Tokens.empty() && "token stream must end with Eof");
}

const Token &Parser::peek(unsigned Ahead) const {
  size_t I = Pos + Ahead;
  if (I >= Tokens.size())
    I = Tokens.size() - 1;
  return Tokens[I];
}

Token Parser::advance() {
  Token T = current();
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::accept(TokenKind K) {
  if (!check(K))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind K, const std::string &Where) {
  if (accept(K))
    return true;
  error("expected " + std::string(tokenKindName(K)) + " " + Where +
        ", found " + std::string(tokenKindName(current().Kind)) +
        (current().Text.empty() ? "" : " '" + current().Text + "'"));
  return false;
}

void Parser::error(const std::string &Msg) {
  Errors.push_back("line " + std::to_string(current().Line) + ": " + Msg);
}

bool Parser::atEnd() const {
  return current().is(TokenKind::Eof) || current().is(TokenKind::Error) ||
         !Errors.empty();
}

bool Parser::parseTypeSpecifier(ASTType &Ty) {
  if (accept(TokenKind::KwInt)) {
    Ty = ASTType::Int;
    return true;
  }
  if (accept(TokenKind::KwDouble)) {
    Ty = ASTType::Double;
    return true;
  }
  if (accept(TokenKind::KwVoid)) {
    Ty = ASTType::Void;
    return true;
  }
  return false;
}

TranslationUnit Parser::parseTranslationUnit() {
  TranslationUnit TU;
  if (current().is(TokenKind::Error))
    error(current().Text);
  while (!atEnd())
    parseTopLevel(TU);
  return TU;
}

void Parser::parseTopLevel(TranslationUnit &TU) {
  if (check(TokenKind::PragmaStart)) {
    parseTopLevelPragma(TU);
    return;
  }

  ASTType Ty;
  unsigned Line = current().Line;
  if (!parseTypeSpecifier(Ty)) {
    error("expected type specifier at top level");
    return;
  }
  if (!check(TokenKind::Identifier)) {
    error("expected name after type");
    return;
  }
  std::string Name = advance().Text;

  if (check(TokenKind::LParen)) {
    FunctionDecl F = parseFunction(Ty, Name);
    F.Line = Line;
    TU.Functions.push_back(std::move(F));
    return;
  }

  // Global variable.
  GlobalDecl G;
  G.Ty = Ty;
  G.Name = Name;
  G.Line = Line;
  if (Ty == ASTType::Void) {
    error("global variable of type void");
    return;
  }
  if (accept(TokenKind::LBracket)) {
    if (!check(TokenKind::IntLiteral)) {
      error("global array size must be an integer literal");
      return;
    }
    G.IsArray = true;
    G.ArraySize = advance().IntValue;
    expect(TokenKind::RBracket, "after array size");
  }
  if (accept(TokenKind::Assign)) {
    bool Negative = accept(TokenKind::Minus);
    if (check(TokenKind::IntLiteral)) {
      G.HasInit = true;
      G.Init = static_cast<double>(advance().IntValue);
    } else if (check(TokenKind::FloatLiteral)) {
      G.HasInit = true;
      G.Init = advance().FloatValue;
    } else {
      error("global initializer must be a literal");
      return;
    }
    if (Negative)
      G.Init = -G.Init;
  }
  expect(TokenKind::Semicolon, "after global declaration");
  TU.Globals.push_back(std::move(G));
}

void Parser::parseTopLevelPragma(TranslationUnit &TU) {
  advance(); // PragmaStart
  if (!check(TokenKind::Identifier)) {
    error("expected directive name in pragma");
    return;
  }
  std::string Name = advance().Text;
  if (Name == "threadprivate") {
    expect(TokenKind::LParen, "after 'threadprivate'");
    for (std::string &V : parseNameList())
      TU.ThreadPrivates.push_back(std::move(V));
    expect(TokenKind::RParen, "after threadprivate list");
  } else if (Name == "reducible") {
    // reducible(var : combineFn)
    expect(TokenKind::LParen, "after 'reducible'");
    if (!check(TokenKind::Identifier)) {
      error("expected variable in reducible pragma");
      return;
    }
    std::string Var = advance().Text;
    expect(TokenKind::Colon, "in reducible pragma");
    if (!check(TokenKind::Identifier)) {
      error("expected reducer function in reducible pragma");
      return;
    }
    std::string Fn = advance().Text;
    expect(TokenKind::RParen, "after reducible pragma");
    TU.Reducibles.push_back({Var, Fn});
  } else {
    error("unknown top-level pragma '" + Name + "'");
    return;
  }
  expect(TokenKind::PragmaEnd, "at end of pragma line");
}

FunctionDecl Parser::parseFunction(ASTType RetTy, std::string Name) {
  FunctionDecl F;
  F.RetTy = RetTy;
  F.Name = std::move(Name);
  expect(TokenKind::LParen, "in function declaration");
  if (!check(TokenKind::RParen)) {
    do {
      ParamDecl P;
      if (!parseTypeSpecifier(P.Ty) || P.Ty == ASTType::Void) {
        error("expected parameter type");
        break;
      }
      if (!check(TokenKind::Identifier)) {
        error("expected parameter name");
        break;
      }
      P.Name = advance().Text;
      if (accept(TokenKind::LBracket)) {
        expect(TokenKind::RBracket, "in array parameter");
        P.IsArray = true;
      }
      F.Params.push_back(std::move(P));
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "after parameters");

  if (!check(TokenKind::LBrace)) {
    error("expected function body");
    return F;
  }
  StmtPtr Body = parseBlock();
  F.Body.reset(static_cast<BlockStmt *>(Body.release()));
  return F;
}

StmtPtr Parser::parseBlock() {
  auto Block = std::make_unique<BlockStmt>();
  Block->Line = current().Line;
  expect(TokenKind::LBrace, "to open block");
  while (!check(TokenKind::RBrace) && !atEnd())
    if (StmtPtr S = parseStatement())
      Block->Stmts.push_back(std::move(S));
  expect(TokenKind::RBrace, "to close block");
  return Block;
}

StmtPtr Parser::parseStatement() {
  switch (current().Kind) {
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::KwInt:
  case TokenKind::KwDouble:
    return parseDeclStatement();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwReturn:
    return parseReturn();
  case TokenKind::PragmaStart:
    return parsePragmaStatement();
  case TokenKind::KwSpawn: {
    unsigned Line = current().Line;
    advance();
    ExprPtr Call = parsePrimary();
    expect(TokenKind::Semicolon, "after spawn statement");
    auto S = std::make_unique<SpawnStmt>(std::move(Call));
    S->Line = Line;
    return S;
  }
  case TokenKind::KwSync: {
    unsigned Line = current().Line;
    advance();
    expect(TokenKind::Semicolon, "after 'sync'");
    auto S = std::make_unique<SyncStmt>();
    S->Line = Line;
    return S;
  }
  case TokenKind::Semicolon:
    advance();
    return std::make_unique<BlockStmt>(); // empty statement
  default:
    return parseExprOrAssign();
  }
}

StmtPtr Parser::parseDeclStatement() {
  unsigned Line = current().Line;
  ASTType Ty;
  parseTypeSpecifier(Ty);
  if (!check(TokenKind::Identifier)) {
    error("expected variable name in declaration");
    return nullptr;
  }
  auto D = std::make_unique<DeclStmt>(Ty, advance().Text);
  D->Line = Line;
  if (accept(TokenKind::LBracket)) {
    if (!check(TokenKind::IntLiteral)) {
      error("local array size must be an integer literal");
      return nullptr;
    }
    D->IsArray = true;
    D->ArraySize = advance().IntValue;
    expect(TokenKind::RBracket, "after array size");
  } else if (accept(TokenKind::Assign)) {
    D->Init = parseExpr();
  }
  expect(TokenKind::Semicolon, "after declaration");
  return D;
}

StmtPtr Parser::parseIf() {
  unsigned Line = current().Line;
  advance(); // if
  expect(TokenKind::LParen, "after 'if'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after if condition");
  StmtPtr Then = parseStatement();
  StmtPtr Else;
  if (accept(TokenKind::KwElse))
    Else = parseStatement();
  auto S = std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                    std::move(Else));
  S->Line = Line;
  return S;
}

StmtPtr Parser::parseWhile() {
  unsigned Line = current().Line;
  advance(); // while
  expect(TokenKind::LParen, "after 'while'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after while condition");
  auto S = std::make_unique<WhileStmt>(std::move(Cond), parseStatement());
  S->Line = Line;
  return S;
}

StmtPtr Parser::parseFor() {
  unsigned Line = current().Line;
  advance(); // for
  expect(TokenKind::LParen, "after 'for'");

  auto F = std::make_unique<ForStmt>();
  F->Line = Line;

  if (!check(TokenKind::Identifier)) {
    error("for-init must be 'var = expr'");
    return nullptr;
  }
  F->Counter = advance().Text;
  expect(TokenKind::Assign, "in for-init");
  F->Init = parseExpr();
  expect(TokenKind::Semicolon, "after for-init");

  if (!check(TokenKind::Identifier) || current().Text != F->Counter) {
    error("for-condition must test the loop counter '" + F->Counter + "'");
    return nullptr;
  }
  advance();
  switch (current().Kind) {
  case TokenKind::Less:
    F->Rel = BinaryExpr::Op::LT;
    break;
  case TokenKind::LessEq:
    F->Rel = BinaryExpr::Op::LE;
    break;
  case TokenKind::Greater:
    F->Rel = BinaryExpr::Op::GT;
    break;
  case TokenKind::GreaterEq:
    F->Rel = BinaryExpr::Op::GE;
    break;
  case TokenKind::NotEq:
    F->Rel = BinaryExpr::Op::NE;
    break;
  default:
    error("for-condition must be a comparison");
    return nullptr;
  }
  advance();
  F->Bound = parseExpr();
  expect(TokenKind::Semicolon, "after for-condition");

  if (!check(TokenKind::Identifier) || current().Text != F->Counter) {
    error("for-step must update the loop counter '" + F->Counter + "'");
    return nullptr;
  }
  advance();
  if (accept(TokenKind::PlusPlus)) {
    F->Step = std::make_unique<IntLitExpr>(1);
    F->StepIsAdd = true;
  } else if (accept(TokenKind::MinusMinus)) {
    F->Step = std::make_unique<IntLitExpr>(1);
    F->StepIsAdd = false;
  } else if (accept(TokenKind::PlusAssign)) {
    F->Step = parseExpr();
    F->StepIsAdd = true;
  } else if (accept(TokenKind::MinusAssign)) {
    F->Step = parseExpr();
    F->StepIsAdd = false;
  } else if (accept(TokenKind::Assign)) {
    // i = i + c  or  i = i - c
    if (!check(TokenKind::Identifier) || current().Text != F->Counter) {
      error("for-step must be of the form 'i = i + c'");
      return nullptr;
    }
    advance();
    if (accept(TokenKind::Plus))
      F->StepIsAdd = true;
    else if (accept(TokenKind::Minus))
      F->StepIsAdd = false;
    else {
      error("for-step must be of the form 'i = i + c'");
      return nullptr;
    }
    F->Step = parseExpr();
  } else {
    error("unsupported for-step");
    return nullptr;
  }
  expect(TokenKind::RParen, "after for-step");
  F->Body = parseStatement();
  return F;
}

StmtPtr Parser::parseReturn() {
  unsigned Line = current().Line;
  advance(); // return
  ExprPtr V;
  if (!check(TokenKind::Semicolon))
    V = parseExpr();
  expect(TokenKind::Semicolon, "after return");
  auto S = std::make_unique<ReturnStmt>(std::move(V));
  S->Line = Line;
  return S;
}

StmtPtr Parser::parseExprOrAssign() {
  unsigned Line = current().Line;
  ExprPtr LHS = parsePostfix();
  if (!LHS)
    return nullptr;

  AssignStmt::Op Op;
  bool IsAssign = true;
  switch (current().Kind) {
  case TokenKind::Assign:
    Op = AssignStmt::Op::Set;
    break;
  case TokenKind::PlusAssign:
    Op = AssignStmt::Op::Add;
    break;
  case TokenKind::MinusAssign:
    Op = AssignStmt::Op::Sub;
    break;
  case TokenKind::StarAssign:
    Op = AssignStmt::Op::Mul;
    break;
  case TokenKind::SlashAssign:
    Op = AssignStmt::Op::Div;
    break;
  case TokenKind::PlusPlus:
  case TokenKind::MinusMinus: {
    bool IsInc = current().Kind == TokenKind::PlusPlus;
    advance();
    expect(TokenKind::Semicolon, "after statement");
    auto S = std::make_unique<AssignStmt>(
        std::move(LHS), IsInc ? AssignStmt::Op::Add : AssignStmt::Op::Sub,
        std::make_unique<IntLitExpr>(1));
    S->Line = Line;
    return S;
  }
  default:
    IsAssign = false;
    break;
  }

  if (!IsAssign) {
    // Plain expression statement; continue parsing binary operators.
    ExprPtr Full = parseBinaryRHS(0, std::move(LHS));
    expect(TokenKind::Semicolon, "after expression statement");
    auto S = std::make_unique<ExprStmt>(std::move(Full));
    S->Line = Line;
    return S;
  }

  if (!isa<VarExpr>(LHS.get()) && !isa<IndexExpr>(LHS.get())) {
    error("assignment target must be a variable or array element");
    return nullptr;
  }
  advance(); // the assignment operator
  ExprPtr RHS = parseExpr();
  expect(TokenKind::Semicolon, "after assignment");
  auto S =
      std::make_unique<AssignStmt>(std::move(LHS), Op, std::move(RHS));
  S->Line = Line;
  return S;
}

StmtPtr Parser::parsePragmaStatement() {
  advance(); // PragmaStart
  PragmaDirective D = parseDirective();
  expect(TokenKind::PragmaEnd, "at end of pragma line");
  if (!Errors.empty())
    return nullptr;

  if (D.Kind == DirectiveKind::Barrier) {
    auto B = std::make_unique<BarrierStmt>();
    B->Line = D.Line;
    return B;
  }

  StmtPtr Sub = parseStatement();
  if ((D.Kind == DirectiveKind::ParallelFor || D.Kind == DirectiveKind::For) &&
      (!Sub || !isa<ForStmt>(Sub.get()))) {
    error("a loop directive must be followed by a 'for' statement");
    return nullptr;
  }
  auto P = std::make_unique<PragmaStmt>(std::move(D), std::move(Sub));
  P->Line = P->Directive.Line;
  return P;
}

PragmaDirective Parser::parseDirective() {
  PragmaDirective D;
  D.Line = current().Line;
  if (accept(TokenKind::KwFor)) {
    D.Kind = DirectiveKind::For;
    parseClauses(D);
    return D;
  }
  if (!check(TokenKind::Identifier)) {
    error("expected directive name in pragma");
    return D;
  }
  std::string Name = advance().Text;
  if (Name == "parallel") {
    if (accept(TokenKind::KwFor)) {
      D.Kind = DirectiveKind::ParallelFor;
    } else {
      D.Kind = DirectiveKind::Parallel;
    }
  } else if (Name == "critical") {
    D.Kind = DirectiveKind::Critical;
    if (accept(TokenKind::LParen)) {
      if (check(TokenKind::Identifier))
        D.CriticalName = advance().Text;
      expect(TokenKind::RParen, "after critical name");
    }
  } else if (Name == "atomic") {
    D.Kind = DirectiveKind::Atomic;
  } else if (Name == "single") {
    D.Kind = DirectiveKind::Single;
  } else if (Name == "master") {
    D.Kind = DirectiveKind::Master;
  } else if (Name == "ordered") {
    D.Kind = DirectiveKind::Ordered;
  } else if (Name == "barrier") {
    D.Kind = DirectiveKind::Barrier;
  } else {
    error("unknown pragma directive '" + Name + "'");
    return D;
  }
  parseClauses(D);
  return D;
}

void Parser::parseClauses(PragmaDirective &D) {
  while (check(TokenKind::Identifier)) {
    std::string Clause = advance().Text;
    if (Clause == "private") {
      expect(TokenKind::LParen, "after 'private'");
      for (std::string &V : parseNameList())
        D.Privates.push_back(std::move(V));
      expect(TokenKind::RParen, "after private list");
    } else if (Clause == "firstprivate") {
      expect(TokenKind::LParen, "after 'firstprivate'");
      for (std::string &V : parseNameList())
        D.FirstPrivates.push_back(std::move(V));
      expect(TokenKind::RParen, "after firstprivate list");
    } else if (Clause == "lastprivate") {
      expect(TokenKind::LParen, "after 'lastprivate'");
      for (std::string &V : parseNameList())
        D.LastPrivates.push_back(std::move(V));
      expect(TokenKind::RParen, "after lastprivate list");
    } else if (Clause == "relaxed") {
      expect(TokenKind::LParen, "after 'relaxed'");
      for (std::string &V : parseNameList())
        D.Relaxed.push_back(std::move(V));
      expect(TokenKind::RParen, "after relaxed list");
    } else if (Clause == "shared") {
      expect(TokenKind::LParen, "after 'shared'");
      for (std::string &V : parseNameList())
        D.Shared.push_back(std::move(V));
      expect(TokenKind::RParen, "after shared list");
    } else if (Clause == "reduction") {
      expect(TokenKind::LParen, "after 'reduction'");
      PragmaDirective::Reduction R;
      // Operator: + * or an identifier (min/max/custom function).
      if (accept(TokenKind::Plus))
        R.OpName = "+";
      else if (accept(TokenKind::Star))
        R.OpName = "*";
      else if (check(TokenKind::Identifier))
        R.OpName = advance().Text;
      else {
        error("expected reduction operator");
        return;
      }
      expect(TokenKind::Colon, "in reduction clause");
      std::vector<std::string> Vars = parseNameList();
      expect(TokenKind::RParen, "after reduction clause");
      for (std::string &V : Vars) {
        PragmaDirective::Reduction Copy = R;
        Copy.Var = std::move(V);
        D.Reductions.push_back(std::move(Copy));
      }
    } else if (Clause == "nowait") {
      D.NoWait = true;
    } else if (Clause == "ordered") {
      D.HasOrderedClause = true;
    } else if (Clause == "schedule") {
      expect(TokenKind::LParen, "after 'schedule'");
      if (check(TokenKind::Identifier))
        advance(); // kind (only 'static' supported)
      if (accept(TokenKind::Comma)) {
        if (check(TokenKind::IntLiteral))
          D.ChunkSize = advance().IntValue;
        else
          error("expected chunk size in schedule clause");
      }
      expect(TokenKind::RParen, "after schedule clause");
    } else {
      error("unknown clause '" + Clause + "'");
      return;
    }
  }
}

std::vector<std::string> Parser::parseNameList() {
  std::vector<std::string> Names;
  do {
    if (!check(TokenKind::Identifier)) {
      error("expected name in list");
      return Names;
    }
    Names.push_back(advance().Text);
  } while (accept(TokenKind::Comma));
  return Names;
}

// --- Expressions -------------------------------------------------------------

namespace {

int precedenceOf(TokenKind K) {
  switch (K) {
  case TokenKind::PipePipe:
    return 1;
  case TokenKind::AmpAmp:
    return 2;
  case TokenKind::Pipe:
    return 3;
  case TokenKind::Caret:
    return 4;
  case TokenKind::Amp:
    return 5;
  case TokenKind::EqEq:
  case TokenKind::NotEq:
    return 6;
  case TokenKind::Less:
  case TokenKind::LessEq:
  case TokenKind::Greater:
  case TokenKind::GreaterEq:
    return 7;
  case TokenKind::Shl:
  case TokenKind::Shr:
    return 8;
  case TokenKind::Plus:
  case TokenKind::Minus:
    return 9;
  case TokenKind::Star:
  case TokenKind::Slash:
  case TokenKind::Percent:
    return 10;
  default:
    return -1;
  }
}

BinaryExpr::Op binOpOf(TokenKind K) {
  switch (K) {
  case TokenKind::PipePipe:
    return BinaryExpr::Op::LogicalOr;
  case TokenKind::AmpAmp:
    return BinaryExpr::Op::LogicalAnd;
  case TokenKind::Pipe:
    return BinaryExpr::Op::BitOr;
  case TokenKind::Caret:
    return BinaryExpr::Op::BitXor;
  case TokenKind::Amp:
    return BinaryExpr::Op::BitAnd;
  case TokenKind::EqEq:
    return BinaryExpr::Op::EQ;
  case TokenKind::NotEq:
    return BinaryExpr::Op::NE;
  case TokenKind::Less:
    return BinaryExpr::Op::LT;
  case TokenKind::LessEq:
    return BinaryExpr::Op::LE;
  case TokenKind::Greater:
    return BinaryExpr::Op::GT;
  case TokenKind::GreaterEq:
    return BinaryExpr::Op::GE;
  case TokenKind::Shl:
    return BinaryExpr::Op::Shl;
  case TokenKind::Shr:
    return BinaryExpr::Op::Shr;
  case TokenKind::Plus:
    return BinaryExpr::Op::Add;
  case TokenKind::Minus:
    return BinaryExpr::Op::Sub;
  case TokenKind::Star:
    return BinaryExpr::Op::Mul;
  case TokenKind::Slash:
    return BinaryExpr::Op::Div;
  case TokenKind::Percent:
    return BinaryExpr::Op::Rem;
  default:
    return BinaryExpr::Op::Add;
  }
}

} // namespace

ExprPtr Parser::parseExpr() { return parseBinaryRHS(0, parseUnary()); }

ExprPtr Parser::parseBinaryRHS(int MinPrec, ExprPtr LHS) {
  if (!LHS)
    return nullptr;
  while (true) {
    int Prec = precedenceOf(current().Kind);
    if (Prec < MinPrec || Prec < 0)
      return LHS;
    TokenKind OpTok = advance().Kind;
    ExprPtr RHS = parseUnary();
    if (!RHS)
      return nullptr;
    int NextPrec = precedenceOf(current().Kind);
    if (NextPrec > Prec)
      RHS = parseBinaryRHS(Prec + 1, std::move(RHS));
    unsigned Line = LHS->Line;
    LHS = std::make_unique<BinaryExpr>(binOpOf(OpTok), std::move(LHS),
                                       std::move(RHS));
    LHS->Line = Line;
  }
}

ExprPtr Parser::parseUnary() {
  unsigned Line = current().Line;
  if (accept(TokenKind::Minus)) {
    auto E = std::make_unique<UnaryExpr>(UnaryExpr::Op::Neg, parseUnary());
    E->Line = Line;
    return E;
  }
  if (accept(TokenKind::Bang)) {
    auto E = std::make_unique<UnaryExpr>(UnaryExpr::Op::Not, parseUnary());
    E->Line = Line;
    return E;
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  return E;
}

ExprPtr Parser::parsePrimary() {
  unsigned Line = current().Line;
  if (check(TokenKind::IntLiteral)) {
    auto E = std::make_unique<IntLitExpr>(advance().IntValue);
    E->Line = Line;
    return E;
  }
  if (check(TokenKind::FloatLiteral)) {
    auto E = std::make_unique<FloatLitExpr>(advance().FloatValue);
    E->Line = Line;
    return E;
  }
  if (accept(TokenKind::LParen)) {
    ExprPtr E = parseExpr();
    expect(TokenKind::RParen, "after parenthesized expression");
    return E;
  }
  if (check(TokenKind::Identifier)) {
    std::string Name = advance().Text;
    if (accept(TokenKind::LParen)) {
      std::vector<ExprPtr> Args;
      if (!check(TokenKind::RParen)) {
        do {
          Args.push_back(parseExpr());
        } while (accept(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "after call arguments");
      auto E = std::make_unique<CallExpr>(std::move(Name), std::move(Args));
      E->Line = Line;
      return E;
    }
    if (accept(TokenKind::LBracket)) {
      ExprPtr Idx = parseExpr();
      expect(TokenKind::RBracket, "after array index");
      auto E = std::make_unique<IndexExpr>(std::move(Name), std::move(Idx));
      E->Line = Line;
      return E;
    }
    auto E = std::make_unique<VarExpr>(std::move(Name));
    E->Line = Line;
    return E;
  }
  error("expected expression, found " +
        std::string(tokenKindName(current().Kind)));
  return nullptr;
}
