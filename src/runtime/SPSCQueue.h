//===- SPSCQueue.h - Bounded single-producer/single-consumer queue -*- C++ -*-//
///
/// \file
/// Lock-free bounded ring buffer connecting adjacent DSWP pipeline stages.
/// Exactly one producer thread calls push/tryPush and exactly one consumer
/// thread calls pop/tryPop. The acquire/release pairs on Head/Tail give the
/// happens-before edge the pipeline relies on: everything stage s wrote
/// before pushing iteration i's token is visible to stage s+1 after popping
/// it.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_RUNTIME_SPSCQUEUE_H
#define PSPDG_RUNTIME_SPSCQUEUE_H

#include <atomic>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

namespace psc {

template <typename T> class SPSCQueue {
public:
  /// \p CapacityPow2 is rounded up to a power of two (slot count).
  explicit SPSCQueue(size_t CapacityPow2 = 64) {
    size_t N = 1;
    while (N < CapacityPow2)
      N <<= 1;
    Slots.resize(N);
    Mask = N - 1;
  }

  bool tryPush(T &&V) {
    size_t T0 = Tail.load(std::memory_order_relaxed);
    if (T0 - Head.load(std::memory_order_acquire) > Mask)
      return false; // full
    Slots[T0 & Mask] = std::move(V);
    Tail.store(T0 + 1, std::memory_order_release);
    return true;
  }

  bool tryPop(T &Out) {
    size_t H0 = Head.load(std::memory_order_relaxed);
    if (H0 == Tail.load(std::memory_order_acquire))
      return false; // empty
    Out = std::move(Slots[H0 & Mask]);
    Head.store(H0 + 1, std::memory_order_release);
    return true;
  }

  /// Blocking push; spins with yield. Returns false if the queue is closed
  /// (consumer died / run aborted).
  bool push(T V) {
    while (!tryPush(std::move(V))) {
      if (Closed.load(std::memory_order_relaxed))
        return false;
      std::this_thread::yield();
    }
    return true;
  }

  /// Blocking pop; returns false once the queue is closed and drained.
  bool pop(T &Out) {
    while (!tryPop(Out)) {
      if (Closed.load(std::memory_order_acquire))
        return tryPop(Out); // drain race: one final attempt
      std::this_thread::yield();
    }
    return true;
  }

  /// Unblocks both ends; pending pops drain remaining items first.
  void close() { Closed.store(true, std::memory_order_release); }
  bool closed() const { return Closed.load(std::memory_order_relaxed); }

  size_t capacity() const { return Mask + 1; }

private:
  std::vector<T> Slots;
  size_t Mask = 0;
  alignas(64) std::atomic<size_t> Head{0};
  alignas(64) std::atomic<size_t> Tail{0};
  std::atomic<bool> Closed{false};
};

} // namespace psc

#endif // PSPDG_RUNTIME_SPSCQUEUE_H
