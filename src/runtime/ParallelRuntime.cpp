//===- ParallelRuntime.cpp ------------------------------------*- C++ -*-===//

#include "runtime/ParallelRuntime.h"

#include "runtime/SPSCQueue.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>

using namespace psc;

namespace {

Frame cloneFrame(const Frame &Fr) {
  Frame W;
  W.F = Fr.F;
  W.Regs = Fr.Regs;
  W.Allocas = Fr.Allocas;
  return W;
}

/// Resolves \p Storage to its shared memory object: globals through the
/// state, allocas through the master frame.
MemObject *sharedObject(ExecState &S, Frame &Fr, const Value *Storage) {
  if (const auto *GV = dyn_cast<GlobalVariable>(Storage))
    return S.globalObject(GV);
  auto It = Fr.Allocas.find(Storage);
  return It == Fr.Allocas.end() ? nullptr : It->second;
}

/// Identity element of a reduction in the object's own representation.
void fillIdentity(MemObject &O, ReduceOp Op) {
  int64_t IId = 0;
  double FId = 0.0;
  switch (Op) {
  case ReduceOp::Add:
    break;
  case ReduceOp::Mul:
    IId = 1;
    FId = 1.0;
    break;
  case ReduceOp::Min:
    IId = std::numeric_limits<int64_t>::max();
    FId = std::numeric_limits<double>::infinity();
    break;
  case ReduceOp::Max:
    IId = std::numeric_limits<int64_t>::min();
    FId = -std::numeric_limits<double>::infinity();
    break;
  case ReduceOp::Custom:
    break; // rejected by the plan compiler
  }
  std::fill(O.I.begin(), O.I.end(), IId);
  std::fill(O.F.begin(), O.F.end(), FId);
}

void applyReduce(MemObject &Shared, const MemObject &Partial, ReduceOp Op) {
  auto FoldI = [&](int64_t A, int64_t B) -> int64_t {
    switch (Op) {
    case ReduceOp::Add:
      return A + B;
    case ReduceOp::Mul:
      return A * B;
    case ReduceOp::Min:
      return std::min(A, B);
    case ReduceOp::Max:
      return std::max(A, B);
    case ReduceOp::Custom:
      return A;
    }
    return A;
  };
  auto FoldF = [&](double A, double B) -> double {
    switch (Op) {
    case ReduceOp::Add:
      return A + B;
    case ReduceOp::Mul:
      return A * B;
    case ReduceOp::Min:
      return std::min(A, B);
    case ReduceOp::Max:
      return std::max(A, B);
    case ReduceOp::Custom:
      return A;
    }
    return A;
  };
  if (Shared.IsFloat)
    for (size_t K = 0; K < Shared.F.size(); ++K)
      Shared.F[K] = FoldF(Shared.F[K], Partial.F[K]);
  else
    for (size_t K = 0; K < Shared.I.size(); ++K)
      Shared.I[K] = FoldI(Shared.I[K], Partial.I[K]);
}

/// One worker's private storage for a parallel loop.
struct PrivSet {
  MemObject *IV = nullptr;
  std::vector<MemObject *> Priv; ///< Parallel to LS.Privates.
  std::vector<MemObject *> Red;  ///< Parallel to LS.Reductions.
  std::vector<std::unique_ptr<MemObject>> Owned;

  PrivSet() = default;
  PrivSet(PrivSet &&) = default;
  PrivSet &operator=(PrivSet &&) = default;
};

/// Redirects \p Storage to a fresh private object in (\p W, \p WF).
MemObject *redirect(ExecContext &W, Frame &WF, ExecState &S, Frame &Master,
                    const Value *Storage, PrivSet &P) {
  MemObject *Shared = sharedObject(S, Master, Storage);
  if (!Shared)
    return nullptr;
  P.Owned.push_back(std::make_unique<MemObject>(*Shared)); // copy-in
  MemObject *Obj = P.Owned.back().get();
  if (isa<GlobalVariable>(Storage))
    W.setStorageOverride(Storage, Obj);
  else
    WF.Allocas[Storage] = Obj;
  return Obj;
}

PrivSet privatize(ExecContext &W, Frame &WF, ExecState &S, Frame &Master,
                  const LoopSchedule &LS) {
  PrivSet P;
  P.IV = redirect(W, WF, S, Master, LS.IVStorage, P);
  for (const PrivateVar &V : LS.Privates)
    P.Priv.push_back(redirect(W, WF, S, Master, V.Storage, P));
  for (const ReductionVar &R : LS.Reductions) {
    MemObject *Obj = redirect(W, WF, S, Master, R.Storage, P);
    if (Obj)
      fillIdentity(*Obj, R.Op);
    P.Red.push_back(Obj);
  }
  return P;
}

void setIV(MemObject *IV, long Value) {
  if (!IV)
    return;
  if (IV->IsFloat)
    IV->F[0] = static_cast<double>(Value);
  else
    IV->I[0] = Value;
}

} // namespace

// --- RunState ----------------------------------------------------------------

struct ParallelRuntime::RunState {
  RunState(const Module &M, unsigned Threads) : S(M), Pool(Threads) {}

  ExecState S;
  ThreadPool Pool;
  std::map<const LoopSchedule *, LoopExecStat> Stats;
  std::string Error;
  std::mutex ErrorMu;

  void fail(const std::string &Msg) {
    {
      std::lock_guard<std::mutex> Lock(ErrorMu);
      if (Error.empty())
        Error = Msg;
    }
    S.abort();
  }
};

// --- ParallelRuntime ---------------------------------------------------------

ParallelRuntime::ParallelRuntime(const Module &M, const RuntimePlan &Plan)
    : M(M), Plan(Plan) {}

const BasicBlock *ParallelRuntime::hook(RunState &RS, ExecContext &Ctx,
                                        Frame &Fr, const BasicBlock *Prev,
                                        const BasicBlock *B) {
  (void)Ctx;
  const LoopSchedule *LS = Plan.scheduleFor(Fr.F, B->getIndex());
  if (!LS || LS->Kind == ScheduleKind::Sequential)
    return nullptr;
  // Back edge or re-entry from inside the loop: sequential step continues.
  if (Prev && LS->Blocks.count(Prev->getIndex()))
    return nullptr;

  LoopExecStat &Stat = RS.Stats[LS];
  ++Stat.Invocations;
  Stat.Iterations += static_cast<uint64_t>(std::max(0L, LS->Trip));

  switch (LS->Kind) {
  case ScheduleKind::DOALL:
    return runDOALL(RS, Fr, *LS);
  case ScheduleKind::HELIX:
    return runHELIX(RS, Fr, *LS);
  case ScheduleKind::DSWP:
    return runDSWP(RS, Fr, *LS);
  case ScheduleKind::Sequential:
    break;
  }
  return nullptr;
}

// --- DOALL -------------------------------------------------------------------

const BasicBlock *ParallelRuntime::runDOALL(RunState &RS, Frame &Fr,
                                            const LoopSchedule &LS) {
  ExecState &S = RS.S;
  long Trip = LS.Trip;
  MemObject *SharedIV = sharedObject(S, Fr, LS.IVStorage);
  if (Trip <= 0)
    return LS.Exit;

  long Chunk = LS.Chunk > 0
                   ? LS.Chunk
                   : std::max<long>(1, Trip / (static_cast<long>(
                                                  RS.Pool.numWorkers()) *
                                              4));
  long NumChunks = (Trip + Chunk - 1) / Chunk;

  struct ChunkState {
    std::vector<std::string> Out;
    PrivSet P;
    bool Diverged = false;
  };
  std::vector<ChunkState> CS(static_cast<size_t>(NumChunks));

  for (long C = 0; C < NumChunks; ++C) {
    RS.Pool.submit([&, C] {
      ChunkState &St = CS[static_cast<size_t>(C)];
      ExecContext W(S);
      W.setChargeBatch(64);
      Frame WF = cloneFrame(Fr);
      St.P = privatize(W, WF, S, Fr, LS);
      W.setLocalOutput(&St.Out);
      long Lo = C * Chunk, Hi = std::min(Trip, Lo + Chunk);
      for (long It = Lo; It < Hi; ++It) {
        setIV(St.P.IV, LS.Init + It * LS.Step);
        const BasicBlock *R =
            W.execWithin(WF, LS.Blocks, LS.Header, LS.BodyEntry);
        if (!R || R->getIndex() != LS.Header) {
          if (!S.aborted())
            St.Diverged = true;
          W.flushCharges();
          return;
        }
      }
      W.flushCharges();
    });
  }
  RS.Pool.wait();

  for (ChunkState &St : CS)
    if (St.Diverged)
      RS.fail("DOALL loop left its iteration space");
  if (S.aborted())
    return LS.Exit;

  // Output, reductions, and last-iteration private state merge in chunk
  // order — the sequential order.
  for (ChunkState &St : CS)
    if (!St.Out.empty())
      S.appendOutput(std::move(St.Out));
  for (size_t R = 0; R < LS.Reductions.size(); ++R) {
    MemObject *Shared = sharedObject(S, Fr, LS.Reductions[R].Storage);
    if (!Shared)
      continue;
    for (ChunkState &St : CS)
      if (St.P.Red[R])
        applyReduce(*Shared, *St.P.Red[R], LS.Reductions[R].Op);
  }
  ChunkState &Last = CS.back();
  for (size_t V = 0; V < LS.Privates.size(); ++V) {
    MemObject *Shared = sharedObject(S, Fr, LS.Privates[V].Storage);
    if (Shared && Last.P.Priv[V])
      *Shared = *Last.P.Priv[V];
  }
  setIV(SharedIV, LS.Init + Trip * LS.Step);
  return LS.Exit;
}

// --- HELIX -------------------------------------------------------------------

const BasicBlock *ParallelRuntime::runHELIX(RunState &RS, Frame &Fr,
                                            const LoopSchedule &LS) {
  ExecState &S = RS.S;
  long Trip = LS.Trip;
  MemObject *SharedIV = sharedObject(S, Fr, LS.IVStorage);
  if (Trip <= 0)
    return LS.Exit;

  unsigned W = std::min<unsigned>(RS.Pool.numWorkers(),
                                  static_cast<unsigned>(std::min<long>(
                                      Trip, RS.Pool.numWorkers())));
  if (W == 0)
    W = 1;

  std::atomic<long> Turn{0};
  struct WorkerState {
    PrivSet P;
    bool Diverged = false;
  };
  std::vector<WorkerState> WS(W);

  for (unsigned Wk = 0; Wk < W; ++Wk) {
    RS.Pool.submit([&, Wk] {
      WorkerState &St = WS[Wk];
      ExecContext C(S);
      C.setChargeBatch(64);
      Frame WF = cloneFrame(Fr);
      St.P = privatize(C, WF, S, Fr, LS);
      ExecContext::IterationGate G;
      G.SCCOf = &LS.SCCOf;
      G.SCCIsSeq = &LS.SCCIsSeq;
      G.Turn = &Turn;
      C.setGate(&G);
      std::vector<std::string> IterOut;
      C.setLocalOutput(&IterOut);

      for (long It = Wk; It < Trip; It += W) {
        G.MyIter = It;
        G.Held = false;
        setIV(St.P.IV, LS.Init + It * LS.Step);
        const BasicBlock *R =
            C.execWithin(WF, LS.Blocks, LS.Header, LS.BodyEntry);
        if (!R || R->getIndex() != LS.Header) {
          if (!S.aborted())
            St.Diverged = true;
          S.abort();
          C.flushCharges();
          return;
        }
        // Iteration-order handoff: pass the gate to iteration It+1 and
        // release this iteration's buffered output in order.
        while (Turn.load(std::memory_order_acquire) != It) {
          if (S.aborted())
            return;
          std::this_thread::yield();
        }
        if (!IterOut.empty()) {
          S.appendOutput(std::move(IterOut));
          IterOut.clear();
        }
        Turn.store(It + 1, std::memory_order_release);
      }
      C.flushCharges();
    });
  }
  RS.Pool.wait();

  for (WorkerState &St : WS)
    if (St.Diverged)
      RS.fail("HELIX loop left its iteration space");
  if (S.aborted())
    return LS.Exit;

  for (size_t R = 0; R < LS.Reductions.size(); ++R) {
    MemObject *Shared = sharedObject(S, Fr, LS.Reductions[R].Storage);
    if (!Shared)
      continue;
    for (WorkerState &St : WS)
      if (St.P.Red[R])
        applyReduce(*Shared, *St.P.Red[R], LS.Reductions[R].Op);
  }
  WorkerState &LastOwner = WS[static_cast<size_t>((Trip - 1) % W)];
  for (size_t V = 0; V < LS.Privates.size(); ++V) {
    MemObject *Shared = sharedObject(S, Fr, LS.Privates[V].Storage);
    if (Shared && LastOwner.P.Priv[V])
      *Shared = *LastOwner.P.Priv[V];
  }
  setIV(SharedIV, LS.Init + Trip * LS.Step);
  return LS.Exit;
}

// --- DSWP --------------------------------------------------------------------

namespace {
struct DSWPToken {
  long It = -1;
  std::map<ShadowMemory::Key, ShadowMemory::Cell> Overlay;
};
} // namespace

const BasicBlock *ParallelRuntime::runDSWP(RunState &RS, Frame &Fr,
                                           const LoopSchedule &LS) {
  ExecState &S = RS.S;
  long Trip = LS.Trip;
  MemObject *SharedIV = sharedObject(S, Fr, LS.IVStorage);
  if (Trip <= 0)
    return LS.Exit;

  unsigned K = LS.NumStages;
  struct StageState {
    ShadowMemory SM;
    PrivSet P;
    bool Diverged = false;
  };
  std::vector<StageState> SS(K);
  std::vector<std::unique_ptr<SPSCQueue<DSWPToken>>> Qs;
  for (unsigned Q = 0; Q + 1 < K; ++Q)
    Qs.push_back(std::make_unique<SPSCQueue<DSWPToken>>(64));

  for (unsigned Stage = 0; Stage < K; ++Stage) {
    RS.Pool.submit([&, Stage] {
      StageState &St = SS[Stage];
      ExecContext C(S);
      C.setChargeBatch(64);
      Frame WF = cloneFrame(Fr);
      // Stage-private IV, bypassing the shadow (runtime-controlled).
      LoopSchedule IVOnly;
      IVOnly.IVStorage = LS.IVStorage;
      St.P = privatize(C, WF, S, Fr, IVOnly);
      if (St.P.IV)
        St.SM.addBypass(St.P.IV);
      C.setShadowMemory(&St.SM);
      C.setCommitFilter([&LS, Stage](const Instruction &I) {
        auto It = LS.StageOf.find(&I);
        return It != LS.StageOf.end() && It->second == Stage;
      });
      C.setInstructionNumbering(&LS.InstIndex);

      SPSCQueue<DSWPToken> *In = Stage > 0 ? Qs[Stage - 1].get() : nullptr;
      SPSCQueue<DSWPToken> *Out = Stage + 1 < K ? Qs[Stage].get() : nullptr;

      for (long It = 0; It < Trip; ++It) {
        DSWPToken T;
        if (In) {
          if (!In->pop(T) || T.It != It) {
            if (!S.aborted() && T.It != It && T.It >= 0)
              St.Diverged = true;
            break;
          }
        } else {
          T.It = It;
        }
        St.SM.beginIteration(std::move(T.Overlay));
        C.setCurrentIteration(It);
        setIV(St.P.IV, LS.Init + It * LS.Step);
        const BasicBlock *R =
            C.execWithin(WF, LS.Blocks, LS.Header, LS.BodyEntry);
        if (!R || R->getIndex() != LS.Header) {
          if (!S.aborted())
            St.Diverged = true;
          S.abort();
          break;
        }
        if (Out) {
          DSWPToken O;
          O.It = It;
          O.Overlay = std::move(St.SM.sharedOverlay());
          St.SM.sharedOverlay().clear();
          if (!Out->push(std::move(O)))
            break;
        }
      }
      C.flushCharges();
      // Unblock neighbors on any exit path.
      if (In)
        In->close();
      if (Out)
        Out->close();
    });
  }
  RS.Pool.wait();

  for (StageState &St : SS)
    if (St.Diverged)
      RS.fail("DSWP stage diverged from its iteration space");
  if (S.aborted())
    return LS.Exit;

  // Merge every stage's persistent overlay back into shared memory; the
  // last dynamic write — ordered by (iteration, instruction index) — wins.
  std::map<ShadowMemory::Key, ShadowMemory::Cell> Final;
  for (StageState &St : SS) {
    for (const auto &[Key, Cell] : St.SM.persist()) {
      auto It = Final.find(Key);
      if (It == Final.end() ||
          std::make_pair(Cell.Iter, Cell.Inst) >
              std::make_pair(It->second.Iter, It->second.Inst))
        Final[Key] = Cell;
    }
  }
  for (const auto &[Key, Cell] : Final) {
    MemObject *O = Key.first;
    if (O->IsFloat)
      O->F[Key.second] = Cell.F;
    else
      O->I[Key.second] = Cell.I;
  }
  setIV(SharedIV, LS.Init + Trip * LS.Step);
  return LS.Exit;
}

// --- Top level ---------------------------------------------------------------

ParallelRunResult ParallelRuntime::run(const std::string &EntryName) {
  const Function *Entry = M.getFunction(EntryName);
  if (!Entry || Entry->isDeclaration())
    reportFatalError("entry function '" + EntryName + "' not found");

  RunState RS(M, Plan.Threads);
  RS.S.setBudget(Budget);

  ExecContext Master(RS.S);
  Master.setLoopHook([this, &RS](ExecContext &Ctx, Frame &Fr,
                                 const BasicBlock *Prev,
                                 const BasicBlock *B) -> const BasicBlock * {
    return hook(RS, Ctx, Fr, Prev, B);
  });

  RTValue R = Master.callFunction(*Entry, {});

  ParallelRunResult Out;
  Out.R.Completed = !RS.S.aborted();
  Out.R.InstructionsExecuted = RS.S.instructionsExecuted();
  Out.R.Output = RS.S.takeOutput();
  Out.R.ExitValue = R.Kind == RTValue::RTKind::Float
                        ? static_cast<int64_t>(R.F)
                        : R.I;
  Out.Error = RS.Error;
  if (!Out.Error.empty())
    Out.R.Completed = false;

  // Per-loop stats: every planned loop, executed or not.
  for (const auto &[Key, LS] : Plan.Loops) {
    LoopExecStat Stat;
    Stat.F = Key.first;
    Stat.Header = Key.second;
    Stat.Depth = LS.Depth;
    Stat.Kind = LS.Kind;
    Stat.Reason = LS.Reason;
    auto It = RS.Stats.find(&LS);
    if (It != RS.Stats.end()) {
      Stat.Invocations = It->second.Invocations;
      Stat.Iterations = It->second.Iterations;
    }
    Out.Loops.push_back(std::move(Stat));
  }
  return Out;
}
