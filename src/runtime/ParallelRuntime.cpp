//===- ParallelRuntime.cpp ------------------------------------*- C++ -*-===//
///
/// The three schedulers (DOALL/HELIX/DSWP) are written once as templates
/// over an engine adapter. The adapters hide the only differences between
/// the tree-walking reference engine and the bytecode engine: how frames
/// clone, how storage values resolve to memory objects, how loop bodies
/// execute, and how the per-instruction scheduler tables (gates, stage
/// ownership, numbering) are wired. All orchestration — chunking, the
/// iteration-order turn, the stage pipeline, privatization copy-in/out,
/// reduction merging, and output splicing — is engine-neutral, so both
/// engines execute byte-identical schedules.
///
//===----------------------------------------------------------------------===//

#include "runtime/ParallelRuntime.h"

#include "obs/Forensics.h"
#include "obs/Trace.h"
#include "runtime/SPSCQueue.h"
#include "runtime/SpecValidation.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>

using namespace psc;

namespace {

constexpr unsigned kNoBlock = 0xFFFFFFFFu;
/// Scheduler-internal sentinel: the speculative invocation was rolled
/// back; the caller must re-execute the loop sequentially.
constexpr unsigned kMisspec = 0xFFFFFFFEu;

Frame cloneFrame(const Frame &Fr) {
  Frame W;
  W.F = Fr.F;
  W.Regs = Fr.Regs;
  W.Allocas = Fr.Allocas;
  return W;
}

/// Identity element of a reduction in the object's own representation.
void fillIdentity(MemObject &O, ReduceOp Op) {
  int64_t IId = 0;
  double FId = 0.0;
  switch (Op) {
  case ReduceOp::Add:
    break;
  case ReduceOp::Mul:
    IId = 1;
    FId = 1.0;
    break;
  case ReduceOp::Min:
    IId = std::numeric_limits<int64_t>::max();
    FId = std::numeric_limits<double>::infinity();
    break;
  case ReduceOp::Max:
    IId = std::numeric_limits<int64_t>::min();
    FId = -std::numeric_limits<double>::infinity();
    break;
  case ReduceOp::Custom:
    break; // rejected by the plan compiler
  }
  std::fill(O.I.begin(), O.I.end(), IId);
  std::fill(O.F.begin(), O.F.end(), FId);
}

void applyReduce(MemObject &Shared, const MemObject &Partial, ReduceOp Op) {
  auto FoldI = [&](int64_t A, int64_t B) -> int64_t {
    switch (Op) {
    case ReduceOp::Add:
      return A + B;
    case ReduceOp::Mul:
      return A * B;
    case ReduceOp::Min:
      return std::min(A, B);
    case ReduceOp::Max:
      return std::max(A, B);
    case ReduceOp::Custom:
      return A;
    }
    return A;
  };
  auto FoldF = [&](double A, double B) -> double {
    switch (Op) {
    case ReduceOp::Add:
      return A + B;
    case ReduceOp::Mul:
      return A * B;
    case ReduceOp::Min:
      return std::min(A, B);
    case ReduceOp::Max:
      return std::max(A, B);
    case ReduceOp::Custom:
      return A;
    }
    return A;
  };
  if (Shared.IsFloat)
    for (size_t K = 0; K < Shared.F.size(); ++K)
      Shared.F[K] = FoldF(Shared.F[K], Partial.F[K]);
  else
    for (size_t K = 0; K < Shared.I.size(); ++K)
      Shared.I[K] = FoldI(Shared.I[K], Partial.I[K]);
}

/// One worker's private storage for a parallel loop.
struct PrivSet {
  MemObject *IV = nullptr;
  std::vector<MemObject *> Priv; ///< Parallel to LS.Privates.
  std::vector<MemObject *> Red;  ///< Parallel to LS.Reductions.
  std::vector<std::unique_ptr<MemObject>> Owned;

  PrivSet() = default;
  PrivSet(PrivSet &&) = default;
  PrivSet &operator=(PrivSet &&) = default;
};

void setIV(MemObject *IV, long Value) {
  if (!IV)
    return;
  if (IV->IsFloat)
    IV->F[0] = static_cast<double>(Value);
  else
    IV->I[0] = Value;
}

using LoopAux = ParallelRuntime::LoopAux;

// --- Engine adapters ---------------------------------------------------------

/// The original tree-walking ExecContext engine (golden reference). The
/// scheduler tables stay as the per-instruction maps in LoopSchedule.
struct WalkerEng {
  using Ctx = ExecContext;
  using Frm = Frame;
  struct Gate {
    ExecContext::IterationGate G;
  };

  ExecState &S;

  Ctx makeCtx() { return ExecContext(S); }
  Frm clone(const Frm &Master) { return cloneFrame(Master); }

  /// Resolves \p Storage to its shared memory object: globals through the
  /// state, allocas through the master frame.
  MemObject *shared(Frm &Master, const Value *Storage) {
    if (const auto *GV = dyn_cast<GlobalVariable>(Storage))
      return S.globalObject(GV);
    auto It = Master.Allocas.find(Storage);
    return It == Master.Allocas.end() ? nullptr : It->second;
  }

  void redirectStorage(Ctx &W, Frm &WF, const Value *Storage,
                       MemObject *Obj) {
    if (isa<GlobalVariable>(Storage))
      W.setStorageOverride(Storage, Obj);
    else
      WF.Allocas[Storage] = Obj;
  }

  unsigned execWithin(Ctx &W, Frm &WF, const LoopSchedule &LS,
                      const LoopAux *) {
    const BasicBlock *R = W.execWithin(WF, LS.Blocks, LS.Header, LS.BodyEntry);
    return R ? R->getIndex() : kNoBlock;
  }

  void initGate(Ctx &C, Gate &G, const LoopSchedule &LS, const LoopAux *,
                std::atomic<long> *Turn) {
    G.G.SCCOf = &LS.SCCOf;
    G.G.SCCIsSeq = &LS.SCCIsSeq;
    G.G.Turn = Turn;
    C.setGate(&G.G);
  }
  void gateIter(Gate &G, long It) {
    G.G.MyIter = It;
    G.G.Held = false;
  }

  void initStage(Ctx &C, const LoopSchedule &LS, const LoopAux *,
                 unsigned Stage, ShadowMemory *SM) {
    C.setShadowMemory(SM);
    C.setCommitFilter([&LS, Stage](const Instruction &I) {
      auto It = LS.StageOf.find(&I);
      return It != LS.StageOf.end() && It->second == Stage;
    });
    C.setInstructionNumbering(&LS.InstIndex);
  }

  /// Speculation: the watch tables plus overlay-merge numbering.
  void initSpec(Ctx &C, const LoopSchedule &LS, const LoopAux *,
                SpecAccessLog *Log) {
    C.setSpecWatch(&LS.WatchOf, Log);
    if (!LS.ValueWatchOf.empty() || !LS.GuardWatchOf.empty())
      C.setValueWatch(&LS.ValueWatchOf, &LS.GuardWatchOf);
    C.setInstructionNumbering(&LS.InstIndex);
  }

  /// Executes a defined function on a fresh context over the shared state
  /// (the combiner registry's merge phase).
  RTValue callFn(const Function *F, std::vector<RTValue> Args) {
    ExecContext C(S);
    return C.callFunction(*F, std::move(Args));
  }
};

/// The pre-decoded bytecode engine: flat frames, flat storage resolution,
/// and flat per-PC scheduler tables (LoopAux).
struct BytecodeEng {
  using Ctx = BCContext;
  using Frm = BCFrame;
  struct Gate {
    BCContext::IterationGate G;
  };

  ExecState &S;
  const BytecodeModule &BM;

  Ctx makeCtx() { return BCContext(S, BM); }
  Frm clone(const Frm &Master) { return Master.cloneShallow(); }

  MemObject *shared(Frm &Master, const Value *Storage) {
    if (const auto *GV = dyn_cast<GlobalVariable>(Storage))
      return S.globalByIndex(GV->getGlobalIndex());
    uint32_t Idx = Master.F->allocaIndexOf(Storage);
    return Idx == BCInst::NoSlot ? nullptr : Master.Allocas[Idx];
  }

  void redirectStorage(Ctx &W, Frm &WF, const Value *Storage,
                       MemObject *Obj) {
    if (const auto *GV = dyn_cast<GlobalVariable>(Storage))
      W.setGlobalOverride(GV->getGlobalIndex(), Obj);
    else
      WF.Allocas[WF.F->allocaIndexOf(Storage)] = Obj;
  }

  unsigned execWithin(Ctx &W, Frm &WF, const LoopSchedule &LS,
                      const LoopAux *A) {
    return W.execWithin(WF, A->InLoop, LS.Header, LS.BodyEntry->getIndex());
  }

  void initGate(Ctx &C, Gate &G, const LoopSchedule &LS, const LoopAux *A,
                std::atomic<long> *Turn) {
    G.G.TablesFor = BM.forFunction(LS.F);
    G.G.SeqAtPC = &A->SeqAtPC;
    G.G.Turn = Turn;
    C.setGate(&G.G);
  }
  void gateIter(Gate &G, long It) {
    G.G.MyIter = It;
    G.G.Held = false;
  }

  void initStage(Ctx &C, const LoopSchedule &LS, const LoopAux *A,
                 unsigned Stage, ShadowMemory *SM) {
    C.setShadowMemory(SM);
    C.setCommitTable(BM.forFunction(LS.F), &A->OwnedAtPC[Stage]);
    C.setNumberingTable(BM.forFunction(LS.F), &A->NumAtPC);
  }

  /// Speculation: the watch tables plus overlay-merge numbering.
  void initSpec(Ctx &C, const LoopSchedule &LS, const LoopAux *A,
                SpecAccessLog *Log) {
    const BCFunction *BF = BM.forFunction(LS.F);
    C.setSpecWatch(BF, &A->WatchAtPC, Log);
    if (!A->VWatchAtPC.empty() || !A->GuardAtPC.empty())
      C.setValueWatch(BF, &A->VWatchAtPC, &A->GuardAtPC);
    C.setNumberingTable(BF, &A->NumAtPC);
  }

  /// Executes a defined function on a fresh context over the shared state
  /// (the combiner registry's merge phase).
  RTValue callFn(const Function *F, std::vector<RTValue> Args) {
    BCContext C(S, BM);
    return C.callFunction(*BM.forFunction(F), std::move(Args));
  }
};

/// Redirects \p Storage to a fresh private object in (\p W, \p WF).
template <class E>
MemObject *redirect(E &Eng, typename E::Ctx &W, typename E::Frm &WF,
                    typename E::Frm &Master, const Value *Storage,
                    PrivSet &P) {
  MemObject *Shared = Eng.shared(Master, Storage);
  if (!Shared)
    return nullptr;
  P.Owned.push_back(std::make_unique<MemObject>(*Shared)); // copy-in
  MemObject *Obj = P.Owned.back().get();
  Eng.redirectStorage(W, WF, Storage, Obj);
  return Obj;
}

template <class E>
PrivSet privatize(E &Eng, typename E::Ctx &W, typename E::Frm &WF,
                  typename E::Frm &Master, const LoopSchedule &LS) {
  PrivSet P;
  P.IV = redirect(Eng, W, WF, Master, LS.IVStorage, P);
  for (const PrivateVar &V : LS.Privates)
    P.Priv.push_back(redirect(Eng, W, WF, Master, V.Storage, P));
  for (const ReductionVar &R : LS.Reductions) {
    MemObject *Obj = redirect(Eng, W, WF, Master, R.Storage, P);
    if (Obj)
      fillIdentity(*Obj, R.Op);
    P.Red.push_back(Obj);
  }
  return P;
}

// --- Speculation helpers -----------------------------------------------------

/// Privatized objects carry their own copy-in/copy-out protocol; they must
/// not be checkpointed by the speculative shadow.
void bypassPrivates(ShadowMemory &SM, const PrivSet &P) {
  for (const std::unique_ptr<MemObject> &O : P.Owned)
    SM.addBypass(O.get());
}

/// Writes one overlay's cells into the shared MemObjects (the already
/// last-write-wins final state of a validated speculative loop).
void commitCells(const std::map<ShadowMemory::Key, ShadowMemory::Cell> &Map) {
  for (const auto &[Key, Cell] : Map) {
    MemObject *O = Key.first;
    if (O->IsFloat)
      O->F[Key.second] = Cell.F;
    else
      O->I[Key.second] = Cell.I;
  }
}

/// Commits validated speculative overlays into shared memory: across all
/// overlays the last dynamic write — ordered by (iteration, program-order
/// instruction index) — wins.
void commitOverlays(
    const std::vector<const std::map<ShadowMemory::Key, ShadowMemory::Cell> *>
        &Overlays) {
  std::map<ShadowMemory::Key, ShadowMemory::Cell> Final;
  for (const auto *O : Overlays) {
    for (const auto &[Key, Cell] : *O) {
      auto It = Final.find(Key);
      if (It == Final.end() ||
          std::make_pair(Cell.Iter, Cell.Inst) >
              std::make_pair(It->second.Iter, It->second.Inst))
        Final[Key] = Cell;
    }
  }
  commitCells(Final);
}

// --- Shared run state --------------------------------------------------------

/// Resident bytes per overlay map entry (key + cell payload) — the unit
/// the resource accounting converts overlay cell counts with.
constexpr uint64_t kOverlayEntryBytes =
    sizeof(ShadowMemory::Key) + sizeof(ShadowMemory::Cell);

struct PRState {
  PRState(const Module &M, unsigned Threads) : S(M), Pool(Threads) {}

  ExecState S;
  ThreadPool Pool;
  std::map<const LoopSchedule *, LoopExecStat> Stats;
  /// Speculative schedules that misspeculated once: they execute
  /// sequentially for the rest of the run (master thread only).
  std::set<const LoopSchedule *> Blown;
  std::string Error;
  std::mutex ErrorMu;

  /// The structured violation behind a kMisspec return, stored by the
  /// detecting scheduler (master thread, after its join) for the flight
  /// recorder; hookLoop consumes it when it publishes the record.
  SpecValidator::ViolationInfo PendingViolation;
  bool HasViolation = false;

  /// Last speculative invocation's resource footprint, written by the
  /// scheduler after its join (master thread) and folded into the loop's
  /// LoopExecStat by hookLoop — misspeculated invocations count too.
  uint64_t InvSpecLogEntries = 0;
  uint64_t InvOverlayBytes = 0;

  void fail(const std::string &Msg) {
    {
      std::lock_guard<std::mutex> Lock(ErrorMu);
      if (Error.empty())
        Error = Msg;
    }
    S.abort();
  }

  /// Clears an abort raised solely to cancel a speculative invocation
  /// (budget exhaustion and plan errors stay fatal).
  void settleSpecAbort() {
    std::lock_guard<std::mutex> Lock(ErrorMu);
    if (Error.empty() && !S.budgetExhausted())
      S.clearAbort();
  }
};

// --- DOALL -------------------------------------------------------------------

template <class E>
unsigned runDOALL(PRState &RS, E &Eng, typename E::Frm &Fr,
                  const LoopSchedule &LS, const LoopAux *A) {
  ExecState &S = RS.S;
  long Trip = LS.Trip;
  MemObject *SharedIV = Eng.shared(Fr, LS.IVStorage);
  unsigned ExitIdx = LS.Exit->getIndex();
  if (Trip <= 0)
    return ExitIdx;

  long Chunk = LS.Chunk > 0
                   ? LS.Chunk
                   : std::max<long>(1, Trip / (static_cast<long>(
                                                  RS.Pool.numWorkers()) *
                                              4));
  long NumChunks = (Trip + Chunk - 1) / Chunk;

  struct ChunkState {
    std::vector<std::string> Out;
    PrivSet P;
    bool Diverged = false;
  };
  std::vector<ChunkState> CS(static_cast<size_t>(NumChunks));

  for (long C = 0; C < NumChunks; ++C) {
    RS.Pool.submit([&, C] {
      obs::TraceSpan Span("doall.chunk", "header=%u chunk=%ld", LS.Header, C);
      ChunkState &St = CS[static_cast<size_t>(C)];
      typename E::Ctx W = Eng.makeCtx();
      W.setChargeBatch(4096);
      typename E::Frm WF = Eng.clone(Fr);
      St.P = privatize(Eng, W, WF, Fr, LS);
      W.setLocalOutput(&St.Out);
      long Lo = C * Chunk, Hi = std::min(Trip, Lo + Chunk);
      for (long It = Lo; It < Hi; ++It) {
        setIV(St.P.IV, LS.Init + It * LS.Step);
        unsigned R = Eng.execWithin(W, WF, LS, A);
        if (R != LS.Header) {
          if (!S.aborted())
            St.Diverged = true;
          W.flushCharges();
          return;
        }
      }
      W.flushCharges();
    });
  }
  RS.Pool.wait();

  for (ChunkState &St : CS)
    if (St.Diverged)
      RS.fail("DOALL loop left its iteration space");
  if (S.aborted())
    return ExitIdx;

  // Output, reductions, and last-iteration private state merge in chunk
  // order — the sequential order.
  for (ChunkState &St : CS)
    if (!St.Out.empty())
      S.appendOutput(std::move(St.Out));
  for (size_t R = 0; R < LS.Reductions.size(); ++R) {
    MemObject *Shared = Eng.shared(Fr, LS.Reductions[R].Storage);
    if (!Shared)
      continue;
    for (ChunkState &St : CS)
      if (St.P.Red[R])
        applyReduce(*Shared, *St.P.Red[R], LS.Reductions[R].Op);
  }
  ChunkState &Last = CS.back();
  for (size_t V = 0; V < LS.Privates.size(); ++V) {
    MemObject *Shared = Eng.shared(Fr, LS.Privates[V].Storage);
    if (Shared && Last.P.Priv[V])
      *Shared = *Last.P.Priv[V];
  }
  setIV(SharedIV, LS.Init + Trip * LS.Step);
  return ExitIdx;
}

// --- Speculative DOALL -------------------------------------------------------
//
// Like runDOALL, but every shared store of every chunk is checkpointed in a
// per-chunk overlay (ShadowMemory SpecChunk mode) and the obligation set is
// validated at the join before anything commits. A chunk leaving its
// iteration space is itself treated as evidence of misspeculation (stale
// values can corrupt control), not as a plan error.
//
// Value obligations (DESIGN.md §10) extend the protocol:
//   * value-speculated scalars are privatized per worker and re-seeded at
//     every iteration with the predicted value (prediction tables built
//     here, anchored at the live entry value and advanced by the trained
//     stride through repeated addition — the sequential rounding chain);
//   * promoted custom reductions privatize their storage zero-filled;
//     after validation the registered combiner *executes* on
//     (shared, partial) in chunk order — the combiner registry;
//   * the validator additionally checks observed writes against the
//     prediction tables and rejects any guarded (cold) access.

/// Reads element 0 of a scalar object into the matching lane (the other
/// lane stays zero: predictions compare by the object's own type, and an
/// out-of-range float-to-int cast would be UB).
void readScalar(const MemObject *O, int64_t &I, double &F) {
  I = 0;
  F = 0.0;
  if (O->IsFloat)
    F = O->F[0];
  else {
    I = O->I[0];
    F = static_cast<double>(O->I[0]);
  }
}

void writeScalar(MemObject *O, int64_t I, double F) {
  if (O->IsFloat)
    O->F[0] = F;
  else
    O->I[0] = I;
}

template <class E>
unsigned runSpecDOALL(PRState &RS, E &Eng, typename E::Frm &Fr,
                      const LoopSchedule &LS, const LoopAux *A) {
  ExecState &S = RS.S;
  long Trip = LS.Trip;
  MemObject *SharedIV = Eng.shared(Fr, LS.IVStorage);
  unsigned ExitIdx = LS.Exit->getIndex();
  if (Trip <= 0)
    return ExitIdx;

  long Chunk = LS.Chunk > 0
                   ? LS.Chunk
                   : std::max<long>(1, Trip / (static_cast<long>(
                                                  RS.Pool.numWorkers()) *
                                              4));
  long NumChunks = (Trip + Chunk - 1) / Chunk;

  // Prediction tables, one per value-speculated scalar: Pred[k] = expected
  // value at entry of iteration k, Pred[Trip] = expected final value.
  // Anchored at the storage's live value NOW (training anchors the same
  // way, so predictions survive input-dependent entry values) and advanced
  // by repeated addition, reproducing sequential float rounding exactly.
  std::vector<SpecValidator::ValueCheck> Checks(LS.ValuePreds.size());
  for (size_t P = 0; P < LS.ValuePreds.size(); ++P) {
    const ValuePrediction &VP = LS.ValuePreds[P];
    SpecValidator::ValueCheck &C = Checks[P];
    C.Kind = VP.Kind;
    C.IsFloat = VP.IsFloat;
    int64_t EI = 0;
    double EF = 0.0;
    readScalar(Eng.shared(Fr, VP.Storage), EI, EF);
    size_t N = VP.Kind == ValueClassKind::Strided
                   ? static_cast<size_t>(Trip) + 1
                   : 1;
    C.PredI.resize(N);
    C.PredF.resize(N);
    C.PredI[0] = EI;
    C.PredF[0] = EF;
    for (size_t K = 1; K < N; ++K) {
      C.PredI[K] = C.PredI[K - 1] + VP.StrideI;
      C.PredF[K] = C.PredF[K - 1] + VP.StrideF;
    }
  }

  struct ChunkState {
    std::vector<std::string> Out;
    PrivSet P;
    ShadowMemory SM;
    SpecAccessLog Log;
    std::vector<MemObject *> VObj; ///< Parallel to LS.ValuePreds.
    std::vector<MemObject *> RObj; ///< Parallel to LS.SpecReductions.
    bool Diverged = false;
  };
  std::vector<ChunkState> CS(static_cast<size_t>(NumChunks));

  for (long C = 0; C < NumChunks; ++C) {
    RS.Pool.submit([&, C] {
      obs::TraceSpan Span("specdoall.chunk", "header=%u chunk=%ld", LS.Header,
                          C);
      ChunkState &St = CS[static_cast<size_t>(C)];
      typename E::Ctx W = Eng.makeCtx();
      W.setChargeBatch(4096);
      typename E::Frm WF = Eng.clone(Fr);
      St.P = privatize(Eng, W, WF, Fr, LS);
      // Per-value checkpoints: predicted scalars (seeded per iteration
      // below) and zero-filled reduction partials.
      for (const ValuePrediction &VP : LS.ValuePreds)
        St.VObj.push_back(redirect(Eng, W, WF, Fr, VP.Storage, St.P));
      for (const SpecReduction &SR : LS.SpecReductions) {
        MemObject *Obj = redirect(Eng, W, WF, Fr, SR.Storage, St.P);
        if (Obj)
          fillIdentity(*Obj, ReduceOp::Add); // zero: the additive identity
        St.RObj.push_back(Obj);
      }
      St.SM.setSpecMode(ShadowMemory::SpecMode::Chunk);
      bypassPrivates(St.SM, St.P);
      W.setShadowMemory(&St.SM);
      Eng.initSpec(W, LS, A, &St.Log);
      W.setLocalOutput(&St.Out);
      long Lo = C * Chunk, Hi = std::min(Trip, Lo + Chunk);
      for (long It = Lo; It < Hi; ++It) {
        W.setCurrentIteration(It);
        setIV(St.P.IV, LS.Init + It * LS.Step);
        for (size_t P = 0; P < LS.ValuePreds.size(); ++P) {
          // Seed the predicted entry value (WriteFirst scalars keep their
          // own chunk-local history: a conforming iteration writes before
          // reading anyway, and a violating read is caught by the log).
          if (LS.ValuePreds[P].Kind == ValueClassKind::WriteFirst)
            continue;
          const SpecValidator::ValueCheck &Ck = Checks[P];
          size_t Idx = Ck.Kind == ValueClassKind::Strided
                           ? static_cast<size_t>(It)
                           : 0;
          if (St.VObj[P])
            writeScalar(St.VObj[P], Ck.PredI[Idx], Ck.PredF[Idx]);
        }
        unsigned R = Eng.execWithin(W, WF, LS, A);
        if (R != LS.Header) {
          if (!S.aborted())
            St.Diverged = true;
          W.flushCharges();
          return;
        }
      }
      W.flushCharges();
    });
  }
  RS.Pool.wait();

  if (S.aborted())
    return ExitIdx; // budget / external abort: no state was committed

  bool Misspec = false;
  std::string Violation;
  for (ChunkState &St : CS)
    if (St.Diverged) {
      Misspec = true;
      Violation = "iteration-space divergence";
    }
  SpecValidator V(LS.AssumedPairs);
  if (!Misspec) {
    obs::TraceSpan VSpan("spec.validate", "header=%u", LS.Header);
    V.setValueChecks(std::move(Checks), Trip);
    for (ChunkState &St : CS)
      V.add(St.Log);
    Misspec = !V.validate(&Violation);
  }
  RS.InvSpecLogEntries = V.entriesChecked();
  for (ChunkState &St : CS)
    RS.InvOverlayBytes += St.SM.persist().size() * kOverlayEntryBytes;
  if (Misspec) {
    obs::traceInstantf("spec.misspec", "header=%u %s", LS.Header,
                       Violation.c_str());
    RS.PendingViolation = V.lastViolation();
    if (RS.PendingViolation.K == SpecValidator::ViolationInfo::Kind::None)
      RS.PendingViolation.Desc = Violation; // divergence, no validator hit
    RS.HasViolation = true;
    return kMisspec; // discard overlays, partials, logs, buffered output
  }

  // Validated: commit overlays, then output, reductions, and last-chunk
  // private state in sequential order — exactly the sound DOALL epilogue.
  std::vector<const std::map<ShadowMemory::Key, ShadowMemory::Cell> *> Ovs;
  for (ChunkState &St : CS)
    Ovs.push_back(&St.SM.persist());
  {
    obs::TraceSpan CSpan("overlay.commit", "header=%u overlays=%zu", LS.Header,
                         Ovs.size());
    commitOverlays(Ovs);
  }
  for (ChunkState &St : CS)
    if (!St.Out.empty())
      S.appendOutput(std::move(St.Out));
  for (size_t R = 0; R < LS.Reductions.size(); ++R) {
    MemObject *Shared = Eng.shared(Fr, LS.Reductions[R].Storage);
    if (!Shared)
      continue;
    for (ChunkState &St : CS)
      if (St.P.Red[R])
        applyReduce(*Shared, *St.P.Red[R], LS.Reductions[R].Op);
  }
  // Promoted reductions: the combiner registry's merge phase. The user's
  // combiner executes on (shared, partial) per chunk, in chunk order — the
  // declared merge semantics of `reducible(var : fn)`.
  for (size_t R = 0; R < LS.SpecReductions.size(); ++R) {
    MemObject *Shared = Eng.shared(Fr, LS.SpecReductions[R].Storage);
    if (!Shared)
      continue;
    for (ChunkState &St : CS)
      if (St.RObj[R])
        Eng.callFn(LS.SpecReductions[R].Combiner,
                   {RTValue::ofPtr(Shared, 0), RTValue::ofPtr(St.RObj[R], 0)});
  }
  // Value-speculated scalars: the validated final value. Strided lands on
  // the last predicted value; invariant keeps the entry value (already in
  // place); WriteFirst takes the globally-last validated write.
  for (size_t P = 0; P < LS.ValuePreds.size(); ++P) {
    const ValuePrediction &VP = LS.ValuePreds[P];
    MemObject *Shared = Eng.shared(Fr, VP.Storage);
    if (!Shared)
      continue;
    if (VP.Kind == ValueClassKind::Strided) {
      int64_t FI = 0;
      double FF = 0.0;
      readScalar(Shared, FI, FF); // types; values overwritten below
      // Recompute the final from the entry the same additive way.
      // (The check tables were moved into the validator; re-deriving via
      // finalValue keeps one authority for the committed value.)
      if (!V.finalValue(static_cast<unsigned>(P), FI, FF))
        continue; // strided requires a write per iteration; unreachable
      writeScalar(Shared, FI, FF);
    } else if (VP.Kind == ValueClassKind::WriteFirst) {
      int64_t FI = 0;
      double FF = 0.0;
      if (V.finalValue(static_cast<unsigned>(P), FI, FF))
        writeScalar(Shared, FI, FF);
    }
  }
  ChunkState &Last = CS.back();
  for (size_t V2 = 0; V2 < LS.Privates.size(); ++V2) {
    MemObject *Shared = Eng.shared(Fr, LS.Privates[V2].Storage);
    if (Shared && Last.P.Priv[V2])
      *Shared = *Last.P.Priv[V2];
  }
  setIV(SharedIV, LS.Init + Trip * LS.Step);
  return ExitIdx;
}

// --- HELIX -------------------------------------------------------------------

template <class E>
unsigned runHELIX(PRState &RS, E &Eng, typename E::Frm &Fr,
                  const LoopSchedule &LS, const LoopAux *A) {
  ExecState &S = RS.S;
  long Trip = LS.Trip;
  MemObject *SharedIV = Eng.shared(Fr, LS.IVStorage);
  unsigned ExitIdx = LS.Exit->getIndex();
  if (Trip <= 0)
    return ExitIdx;

  unsigned W = std::min<unsigned>(RS.Pool.numWorkers(),
                                  static_cast<unsigned>(std::min<long>(
                                      Trip, RS.Pool.numWorkers())));
  if (W == 0)
    W = 1;

  std::atomic<long> Turn{0};
  struct WorkerState {
    PrivSet P;
    bool Diverged = false;
  };
  std::vector<WorkerState> WS(W);

  for (unsigned Wk = 0; Wk < W; ++Wk) {
    RS.Pool.submit([&, Wk] {
      obs::TraceSpan WSpan("helix.worker", "header=%u worker=%u", LS.Header,
                           Wk);
      WorkerState &St = WS[Wk];
      typename E::Ctx C = Eng.makeCtx();
      C.setChargeBatch(4096);
      typename E::Frm WF = Eng.clone(Fr);
      St.P = privatize(Eng, C, WF, Fr, LS);
      typename E::Gate G;
      Eng.initGate(C, G, LS, A, &Turn);
      std::vector<std::string> IterOut;
      C.setLocalOutput(&IterOut);

      for (long It = Wk; It < Trip; It += W) {
        Eng.gateIter(G, It);
        setIV(St.P.IV, LS.Init + It * LS.Step);
        unsigned R = Eng.execWithin(C, WF, LS, A);
        if (R != LS.Header) {
          if (!S.aborted())
            St.Diverged = true;
          S.abort();
          C.flushCharges();
          return;
        }
        // Iteration-order handoff: pass the gate to iteration It+1 and
        // release this iteration's buffered output in order.
        {
          obs::TraceSpan GWait("helix.gate_wait", "it=%ld", It);
          while (Turn.load(std::memory_order_acquire) != It) {
            if (S.aborted())
              return;
            std::this_thread::yield();
          }
        }
        if (!IterOut.empty()) {
          S.appendOutput(std::move(IterOut));
          IterOut.clear();
        }
        Turn.store(It + 1, std::memory_order_release);
      }
      C.flushCharges();
    });
  }
  RS.Pool.wait();

  for (WorkerState &St : WS)
    if (St.Diverged)
      RS.fail("HELIX loop left its iteration space");
  if (S.aborted())
    return ExitIdx;

  for (size_t R = 0; R < LS.Reductions.size(); ++R) {
    MemObject *Shared = Eng.shared(Fr, LS.Reductions[R].Storage);
    if (!Shared)
      continue;
    for (WorkerState &St : WS)
      if (St.P.Red[R])
        applyReduce(*Shared, *St.P.Red[R], LS.Reductions[R].Op);
  }
  WorkerState &LastOwner = WS[static_cast<size_t>((Trip - 1) % W)];
  for (size_t V = 0; V < LS.Privates.size(); ++V) {
    MemObject *Shared = Eng.shared(Fr, LS.Privates[V].Storage);
    if (Shared && LastOwner.P.Priv[V])
      *Shared = *LastOwner.P.Priv[V];
  }
  setIV(SharedIV, LS.Init + Trip * LS.Step);
  return ExitIdx;
}

// --- Speculative HELIX -------------------------------------------------------
//
// Like runHELIX, but shared stores land in a per-iteration overlay
// (ShadowMemory SpecRing mode) and are published into an iteration-ordered
// committed overlay at the gate handoff, where the iteration's watched
// accesses are also validated against all earlier iterations — detection
// happens at the gate boundary. Loads of gated (sequential-SCC) code read
// the committed overlay while holding the turn, so every sound carried
// chain still flows in iteration order. Output buffers globally (in
// iteration order, under the turn) and is released only after the whole
// invocation validates.

template <class E>
unsigned runSpecHELIX(PRState &RS, E &Eng, typename E::Frm &Fr,
                      const LoopSchedule &LS, const LoopAux *A) {
  ExecState &S = RS.S;
  long Trip = LS.Trip;
  MemObject *SharedIV = Eng.shared(Fr, LS.IVStorage);
  unsigned ExitIdx = LS.Exit->getIndex();
  if (Trip <= 0)
    return ExitIdx;

  unsigned W = std::min<unsigned>(RS.Pool.numWorkers(),
                                  static_cast<unsigned>(std::min<long>(
                                      Trip, RS.Pool.numWorkers())));
  if (W == 0)
    W = 1;

  std::atomic<long> Turn{0};
  std::atomic<bool> Misspec{false};
  ShadowMemory::CommittedOverlay Committed;
  SpecValidator Validator(LS.AssumedPairs);
  std::vector<std::string> SpecOut; // appended under the turn, in order
  struct WorkerState {
    PrivSet P;
  };
  std::vector<WorkerState> WS(W);

  for (unsigned Wk = 0; Wk < W; ++Wk) {
    RS.Pool.submit([&, Wk] {
      obs::TraceSpan WSpan("spechelix.worker", "header=%u worker=%u",
                           LS.Header, Wk);
      WorkerState &St = WS[Wk];
      typename E::Ctx C = Eng.makeCtx();
      C.setChargeBatch(4096);
      typename E::Frm WF = Eng.clone(Fr);
      St.P = privatize(Eng, C, WF, Fr, LS);
      ShadowMemory SM;
      SM.setSpecMode(ShadowMemory::SpecMode::Ring);
      SM.setCommitted(&Committed);
      bypassPrivates(SM, St.P);
      C.setShadowMemory(&SM);
      SpecAccessLog IterLog;
      Eng.initSpec(C, LS, A, &IterLog);
      typename E::Gate G;
      Eng.initGate(C, G, LS, A, &Turn);
      std::vector<std::string> IterOut;
      C.setLocalOutput(&IterOut);

      for (long It = Wk; It < Trip; It += W) {
        Eng.gateIter(G, It);
        C.setCurrentIteration(It);
        SM.beginIteration({});
        IterLog.clear();
        setIV(St.P.IV, LS.Init + It * LS.Step);
        unsigned R = Eng.execWithin(C, WF, LS, A);
        if (R != LS.Header) {
          // Stale values can corrupt control: divergence in a speculative
          // loop is misspeculation, not a plan error.
          if (!S.aborted())
            Misspec.store(true, std::memory_order_relaxed);
          S.abort();
          C.flushCharges();
          return;
        }
        // Gate handoff: validate and publish this iteration in order.
        {
          obs::TraceSpan GWait("helix.gate_wait", "it=%ld", It);
          while (Turn.load(std::memory_order_acquire) != It) {
            if (S.aborted()) {
              C.flushCharges();
              return;
            }
            std::this_thread::yield();
          }
        }
        std::string Violation;
        if (!Validator.checkAndAdd(IterLog, &Violation)) {
          obs::traceInstantf("spec.misspec", "header=%u it=%ld %s", LS.Header,
                             It, Violation.c_str());
          Misspec.store(true, std::memory_order_relaxed);
          S.abort(); // unblock gate/turn waiters
          C.flushCharges();
          return;
        }
        {
          obs::TraceSpan MSpan("overlay.merge", "it=%ld", It);
          std::lock_guard<std::mutex> Lock(Committed.Mu);
          for (auto &[Key, Cell] : SM.sharedOverlay())
            Committed.Map[Key] = Cell;
        }
        if (!IterOut.empty()) {
          for (std::string &Line : IterOut)
            SpecOut.push_back(std::move(Line));
          IterOut.clear();
        }
        Turn.store(It + 1, std::memory_order_release);
      }
      C.flushCharges();
    });
  }
  RS.Pool.wait();

  RS.InvSpecLogEntries = Validator.entriesChecked();
  RS.InvOverlayBytes = Committed.Map.size() * kOverlayEntryBytes;
  if (Misspec.load(std::memory_order_relaxed)) {
    // The gate serialized every checkAndAdd, so the validator's last
    // violation is stable now that the workers have joined.
    RS.PendingViolation = Validator.lastViolation();
    if (RS.PendingViolation.K == SpecValidator::ViolationInfo::Kind::None)
      RS.PendingViolation.Desc = "iteration-space divergence";
    RS.HasViolation = true;
    RS.settleSpecAbort();
    return kMisspec;
  }
  if (S.aborted())
    return ExitIdx;

  // Validated: commit the iteration-ordered overlay (already
  // last-write-wins by construction), release output, merge reductions
  // and last-owner private state.
  {
    obs::TraceSpan CSpan("overlay.commit", "header=%u cells=%zu", LS.Header,
                         Committed.Map.size());
    commitCells(Committed.Map);
  }
  if (!SpecOut.empty())
    S.appendOutput(std::move(SpecOut));
  for (size_t R = 0; R < LS.Reductions.size(); ++R) {
    MemObject *Shared = Eng.shared(Fr, LS.Reductions[R].Storage);
    if (!Shared)
      continue;
    for (WorkerState &St : WS)
      if (St.P.Red[R])
        applyReduce(*Shared, *St.P.Red[R], LS.Reductions[R].Op);
  }
  WorkerState &LastOwner = WS[static_cast<size_t>((Trip - 1) % W)];
  for (size_t V = 0; V < LS.Privates.size(); ++V) {
    MemObject *Shared = Eng.shared(Fr, LS.Privates[V].Storage);
    if (Shared && LastOwner.P.Priv[V])
      *Shared = *LastOwner.P.Priv[V];
  }
  setIV(SharedIV, LS.Init + Trip * LS.Step);
  return ExitIdx;
}

// --- DSWP --------------------------------------------------------------------

struct DSWPToken {
  long It = -1;
  std::map<ShadowMemory::Key, ShadowMemory::Cell> Overlay;
};

template <class E>
unsigned runDSWP(PRState &RS, E &Eng, typename E::Frm &Fr,
                 const LoopSchedule &LS, const LoopAux *A) {
  ExecState &S = RS.S;
  long Trip = LS.Trip;
  MemObject *SharedIV = Eng.shared(Fr, LS.IVStorage);
  unsigned ExitIdx = LS.Exit->getIndex();
  if (Trip <= 0)
    return ExitIdx;

  unsigned K = LS.NumStages;
  struct StageState {
    ShadowMemory SM;
    PrivSet P;
    SpecAccessLog Log;
    bool Diverged = false;
  };
  std::vector<StageState> SS(K);
  std::vector<std::unique_ptr<SPSCQueue<DSWPToken>>> Qs;
  for (unsigned Q = 0; Q + 1 < K; ++Q)
    Qs.push_back(std::make_unique<SPSCQueue<DSWPToken>>(64));

  for (unsigned Stage = 0; Stage < K; ++Stage) {
    RS.Pool.submit([&, Stage] {
      obs::TraceSpan SSpan("dswp.stage", "header=%u stage=%u", LS.Header,
                           Stage);
      StageState &St = SS[Stage];
      typename E::Ctx C = Eng.makeCtx();
      C.setChargeBatch(4096);
      typename E::Frm WF = Eng.clone(Fr);
      // Stage-private IV, bypassing the shadow (runtime-controlled).
      LoopSchedule IVOnly;
      IVOnly.IVStorage = LS.IVStorage;
      St.P = privatize(Eng, C, WF, Fr, IVOnly);
      if (St.P.IV)
        St.SM.addBypass(St.P.IV);
      Eng.initStage(C, LS, A, Stage, &St.SM);
      if (LS.Speculative)
        Eng.initSpec(C, LS, A, &St.Log); // stage logs only owned accesses

      SPSCQueue<DSWPToken> *In = Stage > 0 ? Qs[Stage - 1].get() : nullptr;
      SPSCQueue<DSWPToken> *Out = Stage + 1 < K ? Qs[Stage].get() : nullptr;

      for (long It = 0; It < Trip; ++It) {
        DSWPToken T;
        if (In) {
          obs::TraceSpan TWait("dswp.token_wait", "stage=%u it=%ld", Stage,
                               It);
          if (!In->pop(T) || T.It != It) {
            if (!S.aborted() && T.It != It && T.It >= 0)
              St.Diverged = true;
            break;
          }
        } else {
          T.It = It;
        }
        St.SM.beginIteration(std::move(T.Overlay));
        C.setCurrentIteration(It);
        setIV(St.P.IV, LS.Init + It * LS.Step);
        unsigned R = Eng.execWithin(C, WF, LS, A);
        if (R != LS.Header) {
          if (!S.aborted())
            St.Diverged = true;
          S.abort();
          break;
        }
        if (Out) {
          DSWPToken O;
          O.It = It;
          O.Overlay = std::move(St.SM.sharedOverlay());
          St.SM.sharedOverlay().clear();
          if (!Out->push(std::move(O)))
            break;
        }
      }
      C.flushCharges();
      // Unblock neighbors on any exit path.
      if (In)
        In->close();
      if (Out)
        Out->close();
    });
  }
  RS.Pool.wait();

  for (StageState &St : SS)
    RS.InvOverlayBytes += St.SM.persist().size() * kOverlayEntryBytes;

  bool Diverged = false;
  for (StageState &St : SS)
    if (St.Diverged)
      Diverged = true;
  if (LS.Speculative) {
    // Validation at overlay-merge time: divergence counts as evidence of
    // misspeculation (stale values can corrupt stage control).
    bool Misspec = Diverged;
    std::string Violation = Diverged ? "iteration-space divergence" : "";
    SpecValidator V(LS.AssumedPairs);
    if (!Misspec && !S.aborted()) {
      obs::TraceSpan VSpan("spec.validate", "header=%u", LS.Header);
      for (StageState &St : SS)
        V.add(St.Log);
      Misspec = !V.validate(&Violation);
    }
    RS.InvSpecLogEntries = V.entriesChecked();
    if (Misspec) {
      obs::traceInstantf("spec.misspec", "header=%u %s", LS.Header,
                         Violation.c_str());
      RS.PendingViolation = V.lastViolation();
      if (RS.PendingViolation.K == SpecValidator::ViolationInfo::Kind::None)
        RS.PendingViolation.Desc = Violation;
      RS.HasViolation = true;
      RS.settleSpecAbort();
      return kMisspec; // overlays discarded, nothing committed
    }
  } else if (Diverged) {
    RS.fail("DSWP stage diverged from its iteration space");
  }
  if (S.aborted())
    return ExitIdx;

  // Merge every stage's persistent overlay back into shared memory; the
  // last dynamic write — ordered by (iteration, instruction index) — wins.
  std::vector<const std::map<ShadowMemory::Key, ShadowMemory::Cell> *> Ovs;
  for (StageState &St : SS)
    Ovs.push_back(&St.SM.persist());
  {
    obs::TraceSpan CSpan("overlay.commit", "header=%u overlays=%zu", LS.Header,
                         Ovs.size());
    commitOverlays(Ovs);
  }
  setIV(SharedIV, LS.Init + Trip * LS.Step);
  return ExitIdx;
}

// --- Loop hook ---------------------------------------------------------------

/// Builds and publishes the flight-recorder record for a rolled-back
/// invocation (obs/Forensics.h): plan identity, the scheduler's pending
/// structured violation, the violated assumption with its profile
/// provenance, the deterministically-named conflicting object, the
/// watch-set snapshot, and the measured rollback cost.
void recordMisspec(PRState &RS, const RuntimePlan &Plan,
                   const LoopSchedule &LS, const Function *F, unsigned Block,
                   uint64_t Lost) {
  obs::MisspecRecord Rec;
  Rec.Fn = F->getName();
  Rec.Header = Block;
  Rec.Kind = scheduleKindName(LS.Kind);
  Rec.Abstraction = abstractionName(Plan.Abs);
  Rec.Threads = Plan.Threads;
  Rec.LostInstructions = Lost;
  Rec.WatchSet.resize(LS.NumWatched);
  for (const auto &[I, W] : LS.WatchOf)
    if (W < Rec.WatchSet.size())
      Rec.WatchSet[W] = instDesc(I);
  using VK = SpecValidator::ViolationInfo::Kind;
  const SpecValidator::ViolationInfo &VI = RS.PendingViolation;
  if (!RS.HasViolation || VI.K == VK::None) {
    Rec.ViolationKind = "divergence";
    Rec.Description =
        VI.Desc.empty() ? "iteration-space divergence" : VI.Desc;
  } else if (VI.K == VK::Conflict) {
    Rec.ViolationKind = "conflict";
    Rec.SrcWatch = VI.SrcW;
    Rec.DstWatch = VI.DstW;
    Rec.Offset = VI.Off;
    Rec.SrcIter = VI.SrcIter;
    Rec.DstIter = VI.DstIter;
    // The pair table is indexed by assumption id: recover which
    // assumption the violated (src, dst) watch pair lowered from.
    for (size_t Id = 0; Id < LS.AssumedPairs.size(); ++Id) {
      if (LS.AssumedPairs[Id] != std::make_pair(VI.SrcW, VI.DstW))
        continue;
      Rec.AssumptionId = static_cast<int>(Id);
      if (Id < LS.Assumptions.size()) {
        const SpecAssumption &A = LS.Assumptions[Id];
        Rec.AssumedSrc = instDesc(A.Src);
        Rec.AssumedDst = instDesc(A.Dst);
        Rec.SrcIdx = A.SrcIdx;
        Rec.DstIdx = A.DstIdx;
      }
      break;
    }
    // Raw MemObject pointers are run-varying; the module's global table
    // names the object deterministically.
    Rec.Object = "<unnamed>";
    for (const auto &GV : F->getParent()->globals())
      if (RS.S.globalByIndex(GV->getGlobalIndex()) == VI.Obj) {
        Rec.Object = GV->getName();
        break;
      }
    // The validator's text names the object by pointer (run-varying);
    // the record's description re-renders it with the resolved name so
    // the same misspeculation produces the same bytes in every process.
    Rec.Description = "assumed-absent dependence manifested: watch " +
                      std::to_string(VI.SrcW) + " -> " +
                      std::to_string(VI.DstW) + " at '" + Rec.Object +
                      "' offset " + std::to_string(VI.Off);
  } else {
    Rec.ViolationKind = VI.K == VK::Value ? "value" : "guard";
    Rec.Description = VI.Desc;
    Rec.Scalar = VI.Scalar;
    Rec.Iter = VI.Iter;
  }
  RS.HasViolation = false;
  RS.PendingViolation = SpecValidator::ViolationInfo();
  obs::misspecPush(std::move(Rec));
}

/// Engine-neutral loop interception: returns the exit block index when the
/// hook ran the whole loop invocation, kNoBlock when the sequential step
/// should continue.
template <class E>
unsigned hookLoop(PRState &RS, E &Eng, const RuntimePlan &Plan,
                  const std::map<const LoopSchedule *, LoopAux> &Aux,
                  typename E::Frm &Fr, const Function *F, unsigned PrevBlock,
                  unsigned Block) {
  const LoopSchedule *LS = Plan.scheduleFor(F, Block);
  if (!LS || LS->Kind == ScheduleKind::Sequential)
    return kNoBlock;
  // Back edge or re-entry from inside the loop: sequential step continues.
  if (PrevBlock != kNoBlock && LS->Blocks.count(PrevBlock))
    return kNoBlock;
  // A schedule that misspeculated once stays sequential for the run.
  if (RS.Blown.count(LS))
    return kNoBlock;

  LoopExecStat &Stat = RS.Stats[LS];
  ++Stat.Invocations;

  auto AuxIt = Aux.find(LS);
  const LoopAux *A = AuxIt == Aux.end() ? nullptr : &AuxIt->second;

  obs::TraceSpan Span("loop.invoke", "fn=%s header=%u kind=%s%s",
                      F->getName().c_str(), Block,
                      scheduleKindName(LS->Kind),
                      LS->Speculative ? " spec" : "");
  uint64_t InstrBefore = RS.S.instructionsExecuted();
  RS.InvSpecLogEntries = 0;
  RS.InvOverlayBytes = 0;
  unsigned Res = kNoBlock;
  switch (LS->Kind) {
  case ScheduleKind::DOALL:
    Res = LS->Speculative ? runSpecDOALL(RS, Eng, Fr, *LS, A)
                          : runDOALL(RS, Eng, Fr, *LS, A);
    break;
  case ScheduleKind::HELIX:
    Res = LS->Speculative ? runSpecHELIX(RS, Eng, Fr, *LS, A)
                          : runHELIX(RS, Eng, Fr, *LS, A);
    break;
  case ScheduleKind::DSWP:
    Res = runDSWP(RS, Eng, Fr, *LS, A);
    break;
  case ScheduleKind::Sequential:
    return kNoBlock;
  }
  Stat.SpecLogEntries += RS.InvSpecLogEntries;
  Stat.PeakOverlayBytes = std::max(Stat.PeakOverlayBytes, RS.InvOverlayBytes);
  if (Res == kMisspec) {
    // Rollback: every speculative side effect is discarded; the master
    // context executes the loop natively (the sequential semantics), and
    // the schedule is disabled for the rest of the run. The delta on the
    // instruction counter is the discarded work — the rollback's cost.
    uint64_t Lost = RS.S.instructionsExecuted() - InstrBefore;
    ++Stat.Misspeculations;
    obs::traceInstantf("spec.rollback", "fn=%s header=%u lost=%llu",
                       F->getName().c_str(), Block,
                       static_cast<unsigned long long>(Lost));
    obs::traceInstantf("plan.burned", "fn=%s header=%u kind=%s",
                       F->getName().c_str(), Block,
                       scheduleKindName(LS->Kind));
    recordMisspec(RS, Plan, *LS, F, Block, Lost);
    RS.Blown.insert(LS);
    return kNoBlock;
  }
  Stat.Iterations += static_cast<uint64_t>(std::max(0L, LS->Trip));
  return Res;
}

} // namespace

// --- ParallelRuntime ---------------------------------------------------------

ParallelRuntime::ParallelRuntime(const Module &M, const RuntimePlan &Plan,
                                 ExecEngineKind Engine)
    : M(M), Plan(Plan), Engine(Engine) {
  if (Engine != ExecEngineKind::Bytecode)
    return;
  obs::TraceSpan Span("run.decode");
  BCM = std::make_unique<BytecodeModule>(M);
  // Lower each planned loop's per-instruction scheduler maps into flat
  // per-PC tables once; workers then index arrays instead of maps.
  for (const auto &[Key, LS] : Plan.Loops) {
    (void)Key;
    if (LS.Kind == ScheduleKind::Sequential)
      continue;
    const BCFunction *BF = BCM->forFunction(LS.F);
    if (!BF)
      continue;
    // The master only needs hook interception at headers of non-sequential
    // schedules (hookLoop is a no-op everywhere else); flagging exactly
    // those blocks lets it run the fast dispatch loop in between.
    auto &Headers = HookHeaders[BF];
    if (Headers.empty())
      Headers.assign(LS.F->getNumBlocks(), 0);
    Headers[LS.Header] = 1;
    LoopAux A;
    A.InLoop.assign(LS.F->getNumBlocks(), 0);
    for (unsigned B : LS.Blocks)
      A.InLoop[B] = 1;
    if (LS.Kind == ScheduleKind::HELIX) {
      A.SeqAtPC.assign(BF->code().size(), 0);
      for (const auto &[I, SCC] : LS.SCCOf) {
        if (!LS.SCCIsSeq[SCC])
          continue;
        uint32_t PC = BF->pcOf(I);
        if (PC != BCInst::NoSlot)
          A.SeqAtPC[PC] = 1;
      }
    }
    if (LS.Kind == ScheduleKind::DSWP) {
      A.OwnedAtPC.assign(LS.NumStages,
                         std::vector<uint8_t>(BF->code().size(), 0));
      for (const auto &[I, Stage] : LS.StageOf) {
        uint32_t PC = BF->pcOf(I);
        if (PC != BCInst::NoSlot)
          A.OwnedAtPC[Stage][PC] = 1;
      }
    }
    if (LS.Kind == ScheduleKind::DSWP || LS.Speculative) {
      A.NumAtPC.assign(BF->code().size(), 0);
      for (const auto &[I, N] : LS.InstIndex) {
        uint32_t PC = BF->pcOf(I);
        if (PC != BCInst::NoSlot)
          A.NumAtPC[PC] = N;
      }
    }
    if (LS.Speculative) {
      A.WatchAtPC.assign(BF->code().size(), 0);
      for (const auto &[I, W] : LS.WatchOf) {
        uint32_t PC = BF->pcOf(I);
        if (PC != BCInst::NoSlot)
          A.WatchAtPC[PC] = W + 1;
      }
      if (!LS.ValueWatchOf.empty() || !LS.GuardWatchOf.empty()) {
        // Both tables are built together (the engine indexes both when
        // either is installed).
        A.VWatchAtPC.assign(BF->code().size(), 0);
        A.GuardAtPC.assign(BF->code().size(), 0);
        for (const auto &[I, P] : LS.ValueWatchOf) {
          uint32_t PC = BF->pcOf(I);
          if (PC != BCInst::NoSlot)
            A.VWatchAtPC[PC] = P + 1;
        }
        for (const auto &[I, G] : LS.GuardWatchOf) {
          uint32_t PC = BF->pcOf(I);
          if (PC != BCInst::NoSlot)
            A.GuardAtPC[PC] = G + 1;
        }
      }
    }
    Aux[&LS] = std::move(A);
  }
}

ParallelRunResult ParallelRuntime::run(const std::string &EntryName) {
  const Function *Entry = M.getFunction(EntryName);
  if (!Entry || Entry->isDeclaration())
    reportFatalError("entry function '" + EntryName + "' not found");

  PRState RS(M, Plan.Threads);
  RS.S.setBudget(Budget);

  obs::TraceSpan RunSpan("run", "entry=%s engine=%s threads=%u",
                         EntryName.c_str(),
                         Engine == ExecEngineKind::Bytecode ? "bytecode"
                                                            : "walker",
                         Plan.Threads);
  RTValue R;
  if (Engine == ExecEngineKind::Bytecode) {
    BytecodeEng Eng{RS.S, *BCM};
    BCContext Master(RS.S, *BCM);
    // The master's sequential stretches run under an exact local budget
    // lease (workers only execute while the master blocks inside the
    // hook, so the lease is never stale while the master runs). Charges
    // settle before each hook dispatch and the lease renews after, so
    // workers and the master always see a consistent shared count.
    Master.enableLocalBudget();
    Master.setHookHeaders(&HookHeaders);
    Master.setLoopHook([this, &RS, &Eng](BCContext &C, BCFrame &Fr,
                                         unsigned Prev,
                                         unsigned Block) -> unsigned {
      C.flushCharges();
      unsigned Res =
          hookLoop(RS, Eng, Plan, Aux, Fr, Fr.F->function(), Prev, Block);
      C.enableLocalBudget();
      return Res;
    });
    R = Master.callFunction(*BCM->forFunction(Entry), {});
    Master.flushCharges();
  } else {
    WalkerEng Eng{RS.S};
    ExecContext Master(RS.S);
    Master.setLoopHook(
        [this, &RS, &Eng](ExecContext &, Frame &Fr, const BasicBlock *Prev,
                          const BasicBlock *B) -> const BasicBlock * {
          unsigned Res =
              hookLoop(RS, Eng, Plan, Aux, Fr, Fr.F,
                       Prev ? Prev->getIndex() : kNoBlock, B->getIndex());
          return Res == kNoBlock ? nullptr : Fr.F->getBlock(Res);
        });
    R = Master.callFunction(*Entry, {});
  }

  ParallelRunResult Out;
  Out.R.Completed = !RS.S.aborted();
  Out.R.InstructionsExecuted = RS.S.instructionsExecuted();
  Out.R.Output = RS.S.takeOutput();
  Out.R.ExitValue = R.Kind == RTValue::RTKind::Float
                        ? static_cast<int64_t>(R.F)
                        : R.I;
  Out.Error = RS.Error;
  if (!Out.Error.empty())
    Out.R.Completed = false;

  // Per-loop stats: every planned loop, executed or not.
  for (const auto &[Key, LS] : Plan.Loops) {
    LoopExecStat Stat;
    Stat.F = Key.first;
    Stat.Header = Key.second;
    Stat.Depth = LS.Depth;
    Stat.Kind = LS.Kind;
    Stat.Reason = LS.Reason;
    Stat.Speculative = LS.Speculative;
    Stat.Assumptions = static_cast<unsigned>(LS.Assumptions.size());
    Stat.ValuePreds = static_cast<unsigned>(LS.ValuePreds.size());
    Stat.SpecReductions = static_cast<unsigned>(LS.SpecReductions.size());
    auto It = RS.Stats.find(&LS);
    if (It != RS.Stats.end()) {
      Stat.Invocations = It->second.Invocations;
      Stat.Iterations = It->second.Iterations;
      Stat.Misspeculations = It->second.Misspeculations;
      Stat.SpecLogEntries = It->second.SpecLogEntries;
      Stat.PeakOverlayBytes = It->second.PeakOverlayBytes;
    }
    Out.Loops.push_back(std::move(Stat));
  }
  return Out;
}
