//===- SpecValidation.h - Runtime validation of speculative plans -*- C++ -*-===//
///
/// \file
/// Checks the obligations of a speculative LoopSchedule against the
/// watched accesses the workers actually performed. Three obligation
/// families share one validator (and one access log):
///
///   * **Conflict pairs** (§9): an assumption (Src → Dst carried at L) is
///     VIOLATED when some logged Src access in iteration i and some logged
///     Dst access in iteration j > i touched the same location with at
///     least one write — i.e. the dependence the plan assumed absent
///     manifested after all. The validator compresses per (location,
///     watch-index) into iteration ranges, which keeps the check exact: a
///     cross-iteration conflicting pair exists iff min(src-write iters) <
///     max(dst iters) or, for WAR, min(src-read iters) < max(dst-write
///     iters).
///   * **Value predictions** (§10): per value-watched scalar, every
///     iteration's observed writes must match the prediction table —
///     invariant scalars may only store the entry value, strided scalars
///     must write every iteration with the last write landing exactly on
///     the next predicted value, write-first scalars must write before any
///     read in every iteration that touches them.
///   * **Guards** (§10): any logged access carrying a guard mark (a cold
///     access of a promoted reduction) is a violation outright.
///
/// Two usage shapes:
///   * batch (DOALL / DSWP): add() every worker's log after the join, then
///     validate() before merging overlays into shared memory;
///   * incremental (HELIX): checkAndAdd() one iteration's log at each gate
///     handoff, in iteration order — detection at the gate boundary.
///     (Value obligations are DOALL-only, hence batch-only.)
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_RUNTIME_SPECVALIDATION_H
#define PSPDG_RUNTIME_SPECVALIDATION_H

#include "emulator/ExecCore.h"
#include "profiling/DepProfile.h"

#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace psc {

class SpecValidator {
public:
  /// Structured description of the first detected violation — the flight
  /// recorder's raw material (DESIGN.md §14). Filled alongside the string
  /// form whenever validate()/checkAndAdd() report a failure.
  struct ViolationInfo {
    enum class Kind { None, Conflict, Value, Guard };
    Kind K = Kind::None;
    unsigned SrcW = 0, DstW = 0; ///< Conflict: violated pair's watches.
    MemObject *Obj = nullptr;    ///< Conflict: conflicting object.
    uint64_t Off = 0;            ///< Conflict: offset within the object.
    long SrcIter = 0;            ///< Conflict: realizing source iteration.
    long DstIter = 0;            ///< Conflict: realizing dest iteration.
    unsigned Scalar = 0;         ///< Value/Guard: scalar or guard index.
    long Iter = 0;               ///< Value/Guard: violating iteration.
    std::string Desc;            ///< Same text as the string form.
  };

  /// \p AssumedPairs are (src watch, dst watch) indices from the schedule's
  /// conflict-check table.
  explicit SpecValidator(
      const std::vector<std::pair<unsigned, unsigned>> &AssumedPairs)
      : Pairs(AssumedPairs.begin(), AssumedPairs.end()) {}

  /// One value-speculated scalar's prediction. Pred[k] is the expected
  /// value at the *entry* of iteration k; Pred[Trip] is the expected final
  /// value. Built by the runtime at invocation time (anchored at the live
  /// entry value and advanced by the trained stride via repeated addition,
  /// so float predictions reproduce the sequential rounding chain).
  /// Invariant predictions hold one value; WriteFirst predictions only use
  /// index 0 (the entry value is never validated against, only reported).
  struct ValueCheck {
    ValueClassKind Kind = ValueClassKind::Invariant;
    bool IsFloat = false;
    std::vector<int64_t> PredI;
    std::vector<double> PredF;
  };

  /// Installs the value-prediction checks (indexed by VWatch - 1) for a
  /// \p Trip -iteration loop.
  void setValueChecks(std::vector<ValueCheck> Checks, long Trip) {
    VChecks = std::move(Checks);
    this->Trip = Trip;
  }

  /// Batch: record a worker's whole log (no checking).
  void add(const SpecAccessLog &Log) {
    Entries += Log.size();
    for (const SpecAccessRec &R : Log)
      insert(R);
  }

  /// Watched access records this validator has consumed (add and
  /// checkAndAdd alike) — the invocation's spec-log volume, surfaced in
  /// LoopExecStat for resource accounting.
  uint64_t entriesChecked() const { return Entries; }

  /// Batch: true when no obligation — conflict pair, value prediction, or
  /// guard — is violated by everything added.
  bool validate(std::string *Violation = nullptr) const;

  /// Incremental: checks \p Log (one iteration's accesses) against all
  /// previously-added iterations, then records it. Returns false on a
  /// violation. Logs must arrive in iteration order.
  bool checkAndAdd(const SpecAccessLog &Log, std::string *Violation = nullptr);

  /// The first violation the last failing validate()/checkAndAdd()
  /// detected (Kind::None while everything has validated).
  const ViolationInfo &lastViolation() const { return Last; }

  /// The globally-last written value of value-watched scalar \p Pred
  /// (by iteration, then log order) — the sequential final value of a
  /// validated WriteFirst scalar. False when no write was logged.
  bool finalValue(unsigned Pred, int64_t &I, double &F) const;

private:
  static constexpr long None = std::numeric_limits<long>::min();

  struct WatchHist {
    long MinW = std::numeric_limits<long>::max(), MaxW = None;
    long MinR = std::numeric_limits<long>::max(), MaxR = None;
    bool hasW() const { return MaxW != None; }
    bool hasR() const { return MaxR != None; }
    long maxAny() const { return MaxW > MaxR ? MaxW : MaxR; }
  };
  /// Per (value watch, iteration) fold of the value-watched accesses.
  struct IterVal {
    bool FirstIsWrite = false;
    bool HasWrite = false;
    int64_t LastI = 0;
    double LastF = 0.0;
  };
  using Loc = std::pair<MemObject *, uint64_t>;

  void insert(const SpecAccessRec &R) {
    if (R.HasWatch) {
      WatchHist &H = Table[Loc{R.Obj, R.Off}][R.Watch];
      if (R.IsWrite) {
        H.MinW = std::min(H.MinW, R.Iter);
        H.MaxW = std::max(H.MaxW, R.Iter);
      } else {
        H.MinR = std::min(H.MinR, R.Iter);
        H.MaxR = std::max(H.MaxR, R.Iter);
      }
    }
    if (R.VWatch) {
      auto [It, New] = VTable[R.VWatch - 1].try_emplace(R.Iter);
      IterVal &V = It->second;
      if (New)
        V.FirstIsWrite = R.IsWrite;
      if (R.IsWrite) {
        V.HasWrite = true;
        V.LastI = R.ValI;
        V.LastF = R.ValF;
      }
    }
    if (R.GWatch && !GuardHit) {
      GuardHit = true;
      GuardW = R.GWatch - 1;
      GuardIter = R.Iter;
      GuardDesc = "guarded cold access executed (guard " +
                  std::to_string(R.GWatch - 1) + ", iteration " +
                  std::to_string(R.Iter) + ")";
    }
  }

  bool validateValues(std::string *Violation) const;

  static std::string describe(const Loc &L, unsigned SrcW, unsigned DstW);

  std::set<std::pair<unsigned, unsigned>> Pairs;
  std::map<Loc, std::map<uint32_t, WatchHist>> Table;
  std::vector<ValueCheck> VChecks;
  std::map<unsigned, std::map<long, IterVal>> VTable;
  long Trip = 0;
  uint64_t Entries = 0;
  bool GuardHit = false;
  unsigned GuardW = 0;
  long GuardIter = 0;
  std::string GuardDesc;
  mutable ViolationInfo Last; ///< validate() is const but still reports.
};

} // namespace psc

#endif // PSPDG_RUNTIME_SPECVALIDATION_H
