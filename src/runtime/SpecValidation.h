//===- SpecValidation.h - Runtime validation of speculative plans -*- C++ -*-===//
///
/// \file
/// Checks the assumption set of a speculative LoopSchedule against the
/// watched accesses the workers actually performed. An assumption
/// (Src → Dst carried at L) is VIOLATED when some logged Src access in
/// iteration i and some logged Dst access in iteration j > i touched the
/// same location with at least one write — i.e. the dependence the plan
/// assumed absent manifested after all.
///
/// The validator compresses per (location, watch-index) into iteration
/// ranges, which keeps the check exact: a cross-iteration conflicting pair
/// exists iff min(src-write iters) < max(dst iters) or, for WAR,
/// min(src-read iters) < max(dst-write iters).
///
/// Two usage shapes:
///   * batch (DOALL / DSWP): add() every worker's log after the join, then
///     validate() before merging overlays into shared memory;
///   * incremental (HELIX): checkAndAdd() one iteration's log at each gate
///     handoff, in iteration order — detection at the gate boundary.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_RUNTIME_SPECVALIDATION_H
#define PSPDG_RUNTIME_SPECVALIDATION_H

#include "emulator/ExecCore.h"

#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace psc {

class SpecValidator {
public:
  /// \p AssumedPairs are (src watch, dst watch) indices from the schedule's
  /// conflict-check table.
  explicit SpecValidator(
      const std::vector<std::pair<unsigned, unsigned>> &AssumedPairs)
      : Pairs(AssumedPairs.begin(), AssumedPairs.end()) {}

  /// Batch: record a worker's whole log (no checking).
  void add(const SpecAccessLog &Log) {
    for (const SpecAccessRec &R : Log)
      insert(R);
  }

  /// Batch: true when no assumption is violated by everything added.
  bool validate(std::string *Violation = nullptr) const;

  /// Incremental: checks \p Log (one iteration's accesses) against all
  /// previously-added iterations, then records it. Returns false on a
  /// violation. Logs must arrive in iteration order.
  bool checkAndAdd(const SpecAccessLog &Log, std::string *Violation = nullptr);

private:
  static constexpr long None = std::numeric_limits<long>::min();

  struct WatchHist {
    long MinW = std::numeric_limits<long>::max(), MaxW = None;
    long MinR = std::numeric_limits<long>::max(), MaxR = None;
    bool hasW() const { return MaxW != None; }
    bool hasR() const { return MaxR != None; }
    long maxAny() const { return MaxW > MaxR ? MaxW : MaxR; }
  };
  using Loc = std::pair<MemObject *, uint64_t>;

  void insert(const SpecAccessRec &R) {
    WatchHist &H = Table[Loc{R.Obj, R.Off}][R.Watch];
    if (R.IsWrite) {
      H.MinW = std::min(H.MinW, R.Iter);
      H.MaxW = std::max(H.MaxW, R.Iter);
    } else {
      H.MinR = std::min(H.MinR, R.Iter);
      H.MaxR = std::max(H.MaxR, R.Iter);
    }
  }

  static std::string describe(const Loc &L, unsigned SrcW, unsigned DstW);

  std::set<std::pair<unsigned, unsigned>> Pairs;
  std::map<Loc, std::map<uint32_t, WatchHist>> Table;
};

} // namespace psc

#endif // PSPDG_RUNTIME_SPECVALIDATION_H
