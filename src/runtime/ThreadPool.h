//===- ThreadPool.h - Work-stealing thread pool ------------------*- C++ -*-===//
///
/// \file
/// The worker pool behind the parallel plan-execution engine. Each worker
/// owns a deque: it pushes/pops its own work LIFO and steals FIFO from the
/// other workers when empty — the classic work-stealing arrangement, here
/// with small mutex-guarded deques (plan schedules produce tens of coarse
/// tasks, not millions of fine ones).
///
/// Scheduler contract: tasks that busy-wait on one another (HELIX gates,
/// DSWP queue pops) must not outnumber the pool's workers, or the waited-on
/// task may never get a thread. The schedulers size their task sets to
/// numWorkers() accordingly. wait() lends the calling thread to the pool,
/// so the caller never idles while work is pending.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_RUNTIME_THREADPOOL_H
#define PSPDG_RUNTIME_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace psc {

class ThreadPool {
public:
  /// Sizes the pool at \p Threads workers (min 1). Worker threads spawn
  /// lazily on the first submit(), so an unused pool costs nothing.
  explicit ThreadPool(unsigned Threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numWorkers() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues a task (round-robin over worker deques). Safe to call from
  /// any thread: the lazy worker spawn is guarded by a once-flag and the
  /// round-robin cursor is atomic, so concurrent submitters (the analysis
  /// service's session handlers) interleave without coordination.
  void submit(std::function<void()> Task);

  /// Runs tasks on the calling thread until every submitted task finished.
  void wait();

private:
  struct Worker {
    std::mutex Mu;
    std::deque<std::function<void()>> Q;
  };

  void ensureStarted();
  void workerLoop(unsigned Self);
  /// Pops own work (back) or steals (front); empty function if none.
  std::function<void()> take(unsigned Self);

  std::vector<std::unique_ptr<Worker>> Workers;
  std::vector<std::thread> Threads;
  std::once_flag StartOnce; ///< Guards the lazy spawn against racing submits.
  std::mutex WakeMu;
  std::condition_variable WakeCv;
  std::atomic<uint64_t> Pending{0}; ///< submitted, not yet finished
  uint64_t SubmitEpoch = 0; ///< bumped per submit, guarded by WakeMu
  std::atomic<bool> Stop{false};
  std::atomic<unsigned> NextQueue{0};
};

} // namespace psc

#endif // PSPDG_RUNTIME_THREADPOOL_H
