//===- ParallelRuntime.h - Parallel plan-execution engine --------*- C++ -*-===//
///
/// \file
/// Executes a RuntimePlan on real threads: the master ExecContext runs the
/// program sequentially until it reaches a loop header with a parallel
/// schedule, then the engine takes over the whole loop invocation:
///
///   * DOALL — the iteration space is split into chunks executed by
///     work-stealing pool tasks; each worker gets a private copy of the IV,
///     clause/iteration-private scalars, and identity-initialized reduction
///     partials; partials merge and buffered output splices in chunk order
///     after the join, so program output matches the sequential run.
///   * HELIX — iterations round-robin over the workers; instructions of
///     sequential SCCs wait for an iteration-order gate (cross-core
///     signal/wait), so every loop-carried chain executes in iteration
///     order while parallel SCCs overlap.
///   * DSWP — SCC stages form a pipeline over bounded SPSC queues. Shared
///     memory is frozen for the duration of the loop: each stage interprets
///     the full body per iteration but commits only its own SCCs' stores
///     (to a persistent per-stage overlay); the per-iteration overlay flows
///     down the pipeline as the token, and overlays merge back into shared
///     memory at the join, last dynamic write winning.
///
/// The engine's invariant is *sequential output equivalence*: a run under
/// any compiled plan produces the same print stream and exit value as
/// Interpreter::run. The plan compiler's validations exist to uphold this.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_RUNTIME_PARALLELRUNTIME_H
#define PSPDG_RUNTIME_PARALLELRUNTIME_H

#include "emulator/ExecCore.h"
#include "runtime/Schedule.h"
#include "runtime/ThreadPool.h"

#include <cstdint>
#include <string>
#include <vector>

namespace psc {

/// Per-loop execution summary of one run.
struct LoopExecStat {
  const Function *F = nullptr;
  unsigned Header = 0;
  unsigned Depth = 0;
  ScheduleKind Kind = ScheduleKind::Sequential;
  std::string Reason;
  uint64_t Invocations = 0;
  uint64_t Iterations = 0;
};

struct ParallelRunResult {
  RunResult R;
  std::vector<LoopExecStat> Loops;
  std::string Error; ///< Non-empty if a parallel loop diverged.

  bool ok() const { return Error.empty() && R.Completed; }
};

/// Drives one module under one runtime plan. Reusable across runs.
class ParallelRuntime {
public:
  /// \p Plan must outlive the runtime (it owns the loop analyses).
  ParallelRuntime(const Module &M, const RuntimePlan &Plan);

  void setInstructionBudget(uint64_t B) { Budget = B; }

  ParallelRunResult run(const std::string &EntryName = "main");

private:
  struct RunState;

  const BasicBlock *hook(RunState &RS, ExecContext &Ctx, Frame &Fr,
                         const BasicBlock *Prev, const BasicBlock *B);
  const BasicBlock *runDOALL(RunState &RS, Frame &Fr, const LoopSchedule &LS);
  const BasicBlock *runHELIX(RunState &RS, Frame &Fr, const LoopSchedule &LS);
  const BasicBlock *runDSWP(RunState &RS, Frame &Fr, const LoopSchedule &LS);

  const Module &M;
  const RuntimePlan &Plan;
  uint64_t Budget = 2'000'000'000ULL;
};

} // namespace psc

#endif // PSPDG_RUNTIME_PARALLELRUNTIME_H
