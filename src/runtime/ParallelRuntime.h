//===- ParallelRuntime.h - Parallel plan-execution engine --------*- C++ -*-===//
///
/// \file
/// Executes a RuntimePlan on real threads: the master context runs the
/// program sequentially until it reaches a loop header with a parallel
/// schedule, then the engine takes over the whole loop invocation:
///
///   * DOALL — the iteration space is split into chunks executed by
///     work-stealing pool tasks; each worker gets a private copy of the IV,
///     clause/iteration-private scalars, and identity-initialized reduction
///     partials; partials merge and buffered output splices in chunk order
///     after the join, so program output matches the sequential run.
///   * HELIX — iterations round-robin over the workers; instructions of
///     sequential SCCs wait for an iteration-order gate (cross-core
///     signal/wait), so every loop-carried chain executes in iteration
///     order while parallel SCCs overlap.
///   * DSWP — SCC stages form a pipeline over bounded SPSC queues. Shared
///     memory is frozen for the duration of the loop: each stage interprets
///     the full body per iteration but commits only its own SCCs' stores
///     (to a persistent per-stage overlay); the per-iteration overlay flows
///     down the pipeline as the token, and overlays merge back into shared
///     memory at the join, last dynamic write winning.
///
/// The schedulers are generic over the execution engine: the pre-decoded
/// bytecode engine (default; emulator/Bytecode.h) or the tree-walking
/// golden reference (emulator/ExecCore.h). For the bytecode engine the
/// per-instruction scheduler maps (HELIX SCC gates, DSWP stage ownership
/// and numbering, loop block membership) are lowered once per planned loop
/// into flat per-PC tables.
///
/// The engine's invariant is *sequential output equivalence*: a run under
/// any compiled plan, on either engine, produces the same print stream and
/// exit value as Interpreter::run. The plan compiler's validations exist to
/// uphold this.
///
/// Speculative schedules (DESIGN.md §9) extend the invariant with
/// validation and rollback: workers execute against ShadowMemory
/// checkpoints (per-chunk overlays for DOALL, an iteration-ordered
/// committed overlay for HELIX, the existing stage overlays for DSWP)
/// while logging the accesses of watched instructions; the assumption set
/// is validated at overlay-merge time (DOALL/DSWP) or at each gate
/// handoff (HELIX). Success commits the overlays and buffered output;
/// misspeculation discards every side effect of the attempt and the loop
/// re-executes sequentially on the master context (and stays sequential
/// for the rest of the run), so output, exit code, and observer stream
/// remain bit-identical to the sequential run either way.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_RUNTIME_PARALLELRUNTIME_H
#define PSPDG_RUNTIME_PARALLELRUNTIME_H

#include "emulator/Bytecode.h"
#include "emulator/ExecCore.h"
#include "runtime/Schedule.h"
#include "runtime/ThreadPool.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace psc {

/// Per-loop execution summary of one run.
struct LoopExecStat {
  const Function *F = nullptr;
  unsigned Header = 0;
  unsigned Depth = 0;
  ScheduleKind Kind = ScheduleKind::Sequential;
  std::string Reason;
  uint64_t Invocations = 0;
  uint64_t Iterations = 0;

  // Speculation (set for speculative schedules only).
  bool Speculative = false;
  unsigned Assumptions = 0;      ///< Size of the schedule's assumption set.
  unsigned ValuePreds = 0;       ///< Value-speculated scalars (§10).
  unsigned SpecReductions = 0;   ///< Promoted custom reductions (§10).
  uint64_t Misspeculations = 0;  ///< Invocations rolled back to sequential.

  // Resource accounting (speculative schedules; DESIGN.md §14): the
  // speculation machinery's memory footprint, for the health layer's
  // per-session rollups.
  uint64_t SpecLogEntries = 0;    ///< Watched access records validated.
  uint64_t PeakOverlayBytes = 0;  ///< Largest invocation's overlay cells.
};

struct ParallelRunResult {
  RunResult R;
  std::vector<LoopExecStat> Loops;
  std::string Error; ///< Non-empty if a parallel loop diverged.

  bool ok() const { return Error.empty() && R.Completed; }
};

/// Drives one module under one runtime plan. Reusable across runs.
class ParallelRuntime {
public:
  /// \p Plan must outlive the runtime (it owns the loop analyses).
  /// \p Engine selects the execution engine for the master and all workers
  /// (default: the pre-decoded bytecode engine).
  ParallelRuntime(const Module &M, const RuntimePlan &Plan,
                  ExecEngineKind Engine = ExecEngineKind::Bytecode);

  void setInstructionBudget(uint64_t B) { Budget = B; }

  ExecEngineKind engine() const { return Engine; }

  ParallelRunResult run(const std::string &EntryName = "main");

  /// Flat per-PC scheduler tables of one planned loop, derived from the
  /// decoded bytecode (replacing the walker's per-instruction map lookups).
  struct LoopAux {
    std::vector<uint8_t> InLoop; ///< Block index -> inside the loop.
    std::vector<uint8_t> SeqAtPC; ///< HELIX: PC -> in a sequential SCC.
    std::vector<std::vector<uint8_t>> OwnedAtPC; ///< DSWP: stage x PC.
    /// DSWP + speculative: PC -> program-order number (merge ordering).
    std::vector<unsigned> NumAtPC;
    /// Speculative: PC -> watch index + 1 (0 = unwatched).
    std::vector<uint32_t> WatchAtPC;
    /// Value speculation: PC -> value-prediction index + 1 (0 = none).
    std::vector<uint32_t> VWatchAtPC;
    /// Value speculation: PC -> guard ordinal + 1 (0 = none).
    std::vector<uint32_t> GuardAtPC;
  };

private:
  const Module &M;
  const RuntimePlan &Plan;
  uint64_t Budget = 2'000'000'000ULL;
  ExecEngineKind Engine;
  std::unique_ptr<BytecodeModule> BCM; ///< Bytecode engine only.
  std::map<const LoopSchedule *, LoopAux> Aux;
  /// Per-function bitmap of non-sequential schedule headers: the only
  /// blocks where the master's loop hook can act, so the master context
  /// runs the fast dispatch loop everywhere else (bytecode engine only).
  std::unordered_map<const BCFunction *, std::vector<uint8_t>> HookHeaders;
};

} // namespace psc

#endif // PSPDG_RUNTIME_PARALLELRUNTIME_H
