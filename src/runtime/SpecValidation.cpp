//===- SpecValidation.cpp -------------------------------------*- C++ -*-===//

#include "runtime/SpecValidation.h"

#include <sstream>

using namespace psc;

std::string SpecValidator::describe(const Loc &L, unsigned SrcW,
                                    unsigned DstW) {
  std::ostringstream OS;
  OS << "assumed-absent dependence manifested: watch " << SrcW << " -> "
     << DstW << " at object " << L.first << " offset " << L.second;
  return OS.str();
}

bool SpecValidator::validate(std::string *Violation) const {
  for (const auto &[Loc, Hists] : Table) {
    for (const auto &[SrcW, SrcH] : Hists) {
      for (const auto &[DstW, DstH] : Hists) {
        if (!Pairs.count({SrcW, DstW}))
          continue;
        // A src WRITE strictly before any dst access, or a src READ
        // strictly before a dst WRITE, realizes the dependence.
        bool Hit = (SrcH.hasW() && SrcH.MinW < DstH.maxAny()) ||
                   (SrcH.hasR() && DstH.hasW() && SrcH.MinR < DstH.MaxW);
        if (Hit) {
          if (Violation)
            *Violation = describe(Loc, SrcW, DstW);
          return false;
        }
      }
    }
  }
  return true;
}

bool SpecValidator::checkAndAdd(const SpecAccessLog &Log,
                                std::string *Violation) {
  // Check first, insert after: accesses within one iteration never violate
  // (assumptions are strictly cross-iteration, delta >= 1).
  bool OK = true;
  for (const SpecAccessRec &R : Log) {
    auto LIt = Table.find({R.Obj, R.Off});
    if (LIt == Table.end())
      continue;
    for (const auto &[W, H] : LIt->second) {
      // Previously-merged iterations are all earlier than R.Iter except
      // entries from R's own iteration added by an earlier checkAndAdd of
      // the same iteration — the strict < comparisons exclude those.
      bool SrcToR = Pairs.count({W, R.Watch}) &&
                    ((H.hasW() && H.MinW < R.Iter) ||
                     (R.IsWrite && H.hasR() && H.MinR < R.Iter));
      if (SrcToR) {
        if (Violation && OK)
          *Violation = describe({R.Obj, R.Off}, W, R.Watch);
        OK = false;
      }
    }
  }
  for (const SpecAccessRec &R : Log)
    insert(R);
  return OK;
}
