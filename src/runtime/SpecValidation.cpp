//===- SpecValidation.cpp -------------------------------------*- C++ -*-===//

#include "runtime/SpecValidation.h"

#include <sstream>

using namespace psc;

std::string SpecValidator::describe(const Loc &L, unsigned SrcW,
                                    unsigned DstW) {
  std::ostringstream OS;
  OS << "assumed-absent dependence manifested: watch " << SrcW << " -> "
     << DstW << " at object " << L.first << " offset " << L.second;
  return OS.str();
}

bool SpecValidator::validateValues(std::string *Violation) const {
  if (GuardHit) {
    Last = ViolationInfo();
    Last.K = ViolationInfo::Kind::Guard;
    Last.Scalar = GuardW;
    Last.Iter = GuardIter;
    Last.Desc = GuardDesc;
    if (Violation)
      *Violation = GuardDesc;
    return false;
  }
  for (unsigned P = 0; P < VChecks.size(); ++P) {
    const ValueCheck &C = VChecks[P];
    auto TIt = VTable.find(P);
    const std::map<long, IterVal> *Iters =
        TIt == VTable.end() ? nullptr : &TIt->second;
    auto Fail = [&](long Iter, const char *What) {
      Last = ViolationInfo();
      Last.K = ViolationInfo::Kind::Value;
      Last.Scalar = P;
      Last.Iter = Iter;
      Last.Desc = std::string("value prediction violated: scalar ") +
                  std::to_string(P) + " " + What + " at iteration " +
                  std::to_string(Iter);
      if (Violation)
        *Violation = Last.Desc;
      return false;
    };
    switch (C.Kind) {
    case ValueClassKind::Invariant:
      // Every observed write must store the entry value.
      if (Iters)
        for (const auto &[Iter, V] : *Iters)
          if (V.HasWrite &&
              (C.IsFloat ? V.LastF != C.PredF[0] : V.LastI != C.PredI[0]))
            return Fail(Iter, "wrote a non-invariant value");
      break;
    case ValueClassKind::Strided:
      // Every iteration must write, and its last write must land exactly
      // on the next predicted value.
      for (long It = 0; It < Trip; ++It) {
        const IterVal *V = nullptr;
        if (Iters) {
          auto VIt = Iters->find(It);
          if (VIt != Iters->end())
            V = &VIt->second;
        }
        if (!V || !V->HasWrite)
          return Fail(It, "did not advance the stride");
        size_t Next = static_cast<size_t>(It) + 1;
        if (C.IsFloat ? V->LastF != C.PredF[Next] : V->LastI != C.PredI[Next])
          return Fail(It, "wrote off the predicted stride");
      }
      break;
    case ValueClassKind::WriteFirst:
      // No iteration may read the carried-in value.
      if (Iters)
        for (const auto &[Iter, V] : *Iters)
          if (!V.FirstIsWrite)
            return Fail(Iter, "read before its first write");
      break;
    case ValueClassKind::Varying:
      break; // never installed
    }
  }
  return true;
}

bool SpecValidator::finalValue(unsigned Pred, int64_t &I, double &F) const {
  auto TIt = VTable.find(Pred);
  if (TIt == VTable.end())
    return false;
  // Iterations are disjoint across workers and map-ordered; the last
  // writing iteration's fold holds the sequential final value.
  for (auto It = TIt->second.rbegin(); It != TIt->second.rend(); ++It) {
    if (It->second.HasWrite) {
      I = It->second.LastI;
      F = It->second.LastF;
      return true;
    }
  }
  return false;
}

bool SpecValidator::validate(std::string *Violation) const {
  if (!validateValues(Violation))
    return false;
  for (const auto &[Loc, Hists] : Table) {
    for (const auto &[SrcW, SrcH] : Hists) {
      for (const auto &[DstW, DstH] : Hists) {
        if (!Pairs.count({SrcW, DstW}))
          continue;
        // A src WRITE strictly before any dst access, or a src READ
        // strictly before a dst WRITE, realizes the dependence.
        bool WriteHit = SrcH.hasW() && SrcH.MinW < DstH.maxAny();
        bool ReadHit = SrcH.hasR() && DstH.hasW() && SrcH.MinR < DstH.MaxW;
        if (WriteHit || ReadHit) {
          Last = ViolationInfo();
          Last.K = ViolationInfo::Kind::Conflict;
          Last.SrcW = SrcW;
          Last.DstW = DstW;
          Last.Obj = Loc.first;
          Last.Off = Loc.second;
          Last.SrcIter = WriteHit ? SrcH.MinW : SrcH.MinR;
          Last.DstIter = WriteHit ? DstH.maxAny() : DstH.MaxW;
          Last.Desc = describe(Loc, SrcW, DstW);
          if (Violation)
            *Violation = Last.Desc;
          return false;
        }
      }
    }
  }
  return true;
}

bool SpecValidator::checkAndAdd(const SpecAccessLog &Log,
                                std::string *Violation) {
  // Check first, insert after: accesses within one iteration never violate
  // (assumptions are strictly cross-iteration, delta >= 1).
  Entries += Log.size();
  bool OK = true;
  for (const SpecAccessRec &R : Log) {
    auto LIt = Table.find({R.Obj, R.Off});
    if (LIt == Table.end())
      continue;
    for (const auto &[W, H] : LIt->second) {
      // Previously-merged iterations are all earlier than R.Iter except
      // entries from R's own iteration added by an earlier checkAndAdd of
      // the same iteration — the strict < comparisons exclude those.
      bool WriteHit = H.hasW() && H.MinW < R.Iter;
      bool ReadHit = R.IsWrite && H.hasR() && H.MinR < R.Iter;
      bool SrcToR = Pairs.count({W, R.Watch}) && (WriteHit || ReadHit);
      if (SrcToR) {
        if (OK) {
          Last = ViolationInfo();
          Last.K = ViolationInfo::Kind::Conflict;
          Last.SrcW = W;
          Last.DstW = R.Watch;
          Last.Obj = R.Obj;
          Last.Off = R.Off;
          Last.SrcIter = WriteHit ? H.MinW : H.MinR;
          Last.DstIter = R.Iter;
          Last.Desc = describe({R.Obj, R.Off}, W, R.Watch);
          if (Violation)
            *Violation = Last.Desc;
        }
        OK = false;
      }
    }
  }
  for (const SpecAccessRec &R : Log)
    insert(R);
  return OK;
}
