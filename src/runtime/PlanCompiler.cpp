//===- PlanCompiler.cpp - Runtime schedule selection ----------*- C++ -*-===//
///
/// Derives executable LoopSchedules from the abstraction views. See
/// Schedule.h for the validation contract. The selection order per loop is
/// DOALL > HELIX > DSWP > Sequential; a failed validation step records its
/// reason so `pscc --run-parallel` can report why a loop stayed sequential.
///
//===----------------------------------------------------------------------===//

#include "runtime/Schedule.h"

#include "analysis/Privatization.h"
#include "parallel/RegionMap.h"
#include "pspdg/PSPDGBuilder.h"

#include <algorithm>

using namespace psc;

const char *psc::scheduleKindName(ScheduleKind K) {
  switch (K) {
  case ScheduleKind::Sequential:
    return "sequential";
  case ScheduleKind::DOALL:
    return "DOALL";
  case ScheduleKind::HELIX:
    return "HELIX";
  case ScheduleKind::DSWP:
    return "DSWP";
  }
  return "?";
}

namespace {

bool isScalarStorage(const Value *V) {
  if (const auto *GV = dyn_cast<GlobalVariable>(V))
    return !isa<ArrayType>(GV->getObjectType());
  if (const auto *AI = dyn_cast<AllocaInst>(V))
    return !isa<ArrayType>(AI->getAllocatedType());
  return false;
}

bool isFloatStorage(const Value *V) {
  const Type *Ty = nullptr;
  if (const auto *GV = dyn_cast<GlobalVariable>(V))
    Ty = GV->getObjectType();
  else if (const auto *AI = dyn_cast<AllocaInst>(V))
    Ty = AI->getAllocatedType();
  if (!Ty)
    return false;
  if (const auto *AT = dyn_cast<ArrayType>(Ty))
    Ty = AT->getElement();
  return Ty->isFloat();
}

const Value *rootStorage(const Value *Ptr) {
  while (const auto *G = dyn_cast<GEPInst>(Ptr))
    Ptr = G->getBase();
  return Ptr;
}

/// Statically collected facts about one loop's body (including nested
/// loops), feeding the schedule validations.
struct LoopFacts {
  const BasicBlock *BodyEntry = nullptr;
  const BasicBlock *Exit = nullptr;
  bool SingleExit = false;
  bool HasRet = false;
  bool HasBarrier = false;
  bool HasDefinedCalls = false;
  bool HasPrint = false;
  bool WritesThreadPrivate = false;
  std::set<const Value *> Written;          ///< Root storages stored to.
  std::set<const Value *> MutexSafeWritten; ///< Every store under a lock.
  std::set<DirectiveKind> RegionKinds;      ///< Regions begun inside.
  std::set<const Instruction *> OrderedInsts;
};

LoopFacts collectFacts(const Function &F, const FunctionAnalysis &FA,
                       const RegionMap &Regions, const Loop &L) {
  LoopFacts Facts;
  const Module &M = *F.getParent();

  // Exit structure: the only exit edge allowed is header → Exit.
  const BasicBlock *Header = F.getBlock(L.getHeader());
  Facts.SingleExit = true;
  for (unsigned BI : L.blocks()) {
    const BasicBlock *BB = F.getBlock(BI);
    for (BasicBlock *Succ : BB->successors()) {
      if (L.contains(Succ->getIndex()))
        continue;
      if (BB != Header || Facts.Exit) {
        Facts.SingleExit = false;
        continue;
      }
      Facts.Exit = Succ;
    }
  }
  if (const auto *CB = dyn_cast_or_null<CondBranchInst>(
          Header->getTerminator())) {
    if (L.contains(CB->getTrueTarget()->getIndex()) &&
        CB->getFalseTarget() == Facts.Exit)
      Facts.BodyEntry = CB->getTrueTarget();
    else if (L.contains(CB->getFalseTarget()->getIndex()) &&
             CB->getTrueTarget() == Facts.Exit)
      Facts.BodyEntry = CB->getFalseTarget();
  }

  std::set<const Value *> LockedWrites, UnlockedWrites;
  for (unsigned BI : L.blocks()) {
    const BasicBlock *BB = F.getBlock(BI);
    for (const Instruction *I : *BB) {
      if (isa<ReturnInst>(I))
        Facts.HasRet = true;
      if (const auto *SI = dyn_cast<StoreInst>(I)) {
        const Value *Root = rootStorage(SI->getPointer());
        Facts.Written.insert(Root);
        if (M.getParallelInfo().isThreadPrivate(Root))
          Facts.WritesThreadPrivate = true;
        if (Regions.inMutualExclusionRegion(I))
          LockedWrites.insert(Root);
        else
          UnlockedWrites.insert(Root);
      }
      if (const auto *CI = dyn_cast<CallInst>(I)) {
        const std::string &Name = CI->getCallee()->getName();
        if (Name == intrinsics::BarrierMarker)
          Facts.HasBarrier = true;
        else if (Name == intrinsics::Print || Name == intrinsics::PrintF)
          Facts.HasPrint = true;
        else if (Name == intrinsics::RegionBegin) {
          if (const auto *IdC = dyn_cast<ConstantInt>(CI->getArg(0)))
            if (const Directive *D = M.getParallelInfo().getDirective(
                    static_cast<unsigned>(IdC->getValue())))
              Facts.RegionKinds.insert(D->Kind);
        } else if (!CI->getCallee()->isDeclaration())
          Facts.HasDefinedCalls = true;
      }
      if (Regions.inOrderedRegion(I))
        Facts.OrderedInsts.insert(I);
    }
  }
  for (const Value *V : LockedWrites)
    if (!UnlockedWrites.count(V))
      Facts.MutexSafeWritten.insert(V);
  (void)FA;
  return Facts;
}

/// Fills iteration space + privatization lists shared by all kinds.
/// Returns empty string on success, else the failure reason.
std::string fillCommon(LoopSchedule &LS, const Function &F,
                       const FunctionAnalysis &FA, const Loop &L,
                       const LoopFacts &Facts) {
  const ForLoopMeta *Meta = FA.forMeta(&L);
  if (!Meta || !Meta->Canonical)
    return "not a canonical counted loop";
  long Trip = Meta->tripCount();
  if (Trip < 0)
    return "non-constant trip count";
  if (!Facts.SingleExit || !Facts.Exit || !Facts.BodyEntry)
    return "irregular exit structure";
  if (Facts.HasRet)
    return "return inside loop";
  if (Facts.HasBarrier)
    return "barrier inside loop";

  LS.F = &F;
  LS.Header = L.getHeader();
  LS.Depth = L.getDepth();
  LS.IVStorage = Meta->CounterStorage;
  LS.Init = Meta->InitVal;
  LS.Step = Meta->Step;
  LS.Trip = Trip;
  LS.BodyEntry = Facts.BodyEntry;
  LS.Exit = Facts.Exit;
  LS.Blocks.insert(L.blocks().begin(), L.blocks().end());
  return "";
}

/// True if the loop writes storage registered by a module-scope
/// `reducible(var : fn)` pragma. The abstraction views drop such a
/// variable's accumulation dependences (the PS-PDG reducible trait), but
/// this engine has no runtime combiner for it: privatizing the object
/// would need identity values an application-specific merge function does
/// not provide. Scheduling such a loop in parallel would race concurrent
/// read-modify-writes on the shared object (nondeterministic accumulation
/// order), violating sequential output equivalence.
bool writesCustomReducible(const Module &M, const LoopFacts &Facts) {
  for (const Directive &D : M.getParallelInfo().directives()) {
    if (D.isLoopDirective())
      continue;
    for (const ReductionClause &R : D.Reductions)
      if (R.Op == ReduceOp::Custom && Facts.Written.count(R.Var.Storage))
        return true;
  }
  return false;
}

/// Privatization classification of the written scalars. Returns "" on
/// success (Privates/Reductions filled), else the failure reason.
/// (Loop-level custom reduction clauses are rejected here too — the
/// "custom reduction operator" return below — so both spellings of a
/// custom reduction keep their loop sequential.)
std::string classifyScalars(LoopSchedule &LS, const Function &F,
                            const FunctionAnalysis &FA, const Loop &L,
                            const LoopFacts &Facts) {
  const Module &M = *F.getParent();
  BasicBlock *Header = F.getBlock(L.getHeader());

  if (writesCustomReducible(M, Facts))
    return "writes custom-reducible storage (no runtime combiner)";

  std::set<const Value *> Priv = computeIterationPrivateScalars(FA, L);
  std::map<const Value *, ReduceOp> Reds;
  for (const Directive *D : M.getParallelInfo().directivesForLoop(Header)) {
    for (const VarRef &V : D->Privates)
      Priv.insert(V.Storage);
    for (const LiveOutClause &C : D->LiveOuts)
      Priv.insert(C.Var.Storage);
    for (const ReductionClause &R : D->Reductions) {
      if (R.Op == ReduceOp::Custom)
        return "custom reduction operator";
      Reds[R.Var.Storage] = R.Op;
    }
  }

  for (const Value *W : Facts.Written) {
    if (W == LS.IVStorage)
      continue;
    if (!isScalarStorage(W)) {
      // Arrays and argument-aliased objects: safety comes from the view's
      // dependence edges (or the runtime lock for orderless conflicts).
      continue;
    }
    if (Reds.count(W))
      continue;
    if (Priv.count(W))
      continue;
    if (Facts.MutexSafeWritten.count(W))
      continue; // orderless update under the runtime region lock
    return std::string("unprivatizable scalar write to '") +
           (W->getName().empty() ? "?" : W->getName()) + "'";
  }

  for (const Value *P : Priv)
    LS.Privates.push_back({P});
  for (auto &[V, Op] : Reds)
    LS.Reductions.push_back({V, Op, isFloatStorage(V)});
  return "";
}

/// Extra validation a *speculative* schedule needs beyond its kind's own
/// checks: the checkpoint mechanism shadows every store and commits only
/// after validation, which cannot express in-place locked read-modify-write
/// updates (concurrent critical/atomic regions would each update a private
/// overlay and lose increments on merge).
std::string specSafe(const LoopPlanView &PV, const LoopFacts &Facts) {
  if (PV.Assumptions.empty())
    return "";
  if (Facts.RegionKinds.count(DirectiveKind::Critical) ||
      Facts.RegionKinds.count(DirectiveKind::Atomic))
    return "speculative plan cannot checkpoint critical/atomic regions";
  return "";
}

std::string tryDOALL(LoopSchedule &LS, const Function &F,
                     const FunctionAnalysis &FA, const Loop &L,
                     const LoopFacts &Facts, const LoopPlanView &PV,
                     const LoopSCCDAG &DAG) {
  if (!PV.TripCountable)
    return "not trip-countable under this view";
  if (std::string R = specSafe(PV, Facts); !R.empty())
    return R;
  if (!DAG.allParallel())
    return "sequential SCCs remain";
  for (const LoopDepEdge &E : PV.Edges)
    if (E.CarriedAtLoop)
      return "loop-carried dependence remains";
  if (Facts.WritesThreadPrivate)
    return "writes threadprivate storage";
  for (DirectiveKind K : Facts.RegionKinds)
    if (K == DirectiveKind::Ordered || K == DirectiveKind::Single ||
        K == DirectiveKind::Master)
      return "ordered/single/master region inside";
  if (std::string R = classifyScalars(LS, F, FA, L, Facts); !R.empty())
    return R;

  BasicBlock *Header = F.getBlock(L.getHeader());
  for (const Directive *D :
       F.getParent()->getParallelInfo().directivesForLoop(Header))
    if (D->ChunkSize > 0)
      LS.Chunk = D->ChunkSize;
  LS.Kind = ScheduleKind::DOALL;
  return "";
}

std::string tryHELIX(LoopSchedule &LS, const Function &F,
                     const FunctionAnalysis &FA, const Loop &L,
                     const LoopFacts &Facts, const LoopPlanView &PV,
                     const LoopSCCDAG &DAG, const RegionMap &Regions) {
  if (!PV.TripCountable)
    return "not trip-countable under this view";
  if (std::string R = specSafe(PV, Facts); !R.empty())
    return R;
  if (DAG.numSCCs() == 0 ||
      DAG.numSequentialSCCs() >= DAG.numSCCs())
    return "no parallel SCCs to overlap";
  if (Facts.WritesThreadPrivate)
    return "writes threadprivate storage";
  for (DirectiveKind K : Facts.RegionKinds)
    if (K == DirectiveKind::Single || K == DirectiveKind::Master)
      return "single/master region inside";
  // Every carried dependence must land in a sequential SCC: the
  // iteration-order gate serializes exactly those instructions.
  std::map<const Instruction *, unsigned> SCCOf;
  for (unsigned I = 0; I < PV.Insts.size(); ++I)
    SCCOf[PV.Insts[I]] = DAG.sccOf(I);
  for (const LoopDepEdge &E : PV.Edges)
    if (E.CarriedAtLoop && !DAG.isSequential(DAG.sccOf(E.Dst)))
      return "carried dependence into a parallel SCC";
  // Ordered-region content must be gated too (iteration order).
  for (const Instruction *I : Facts.OrderedInsts) {
    auto It = SCCOf.find(I);
    if (It != SCCOf.end() && !DAG.isSequential(It->second))
      return "ordered region content not sequential";
  }
  if (std::string R = classifyScalars(LS, F, FA, L, Facts); !R.empty())
    return R;

  // Deadlock avoidance: a critical/atomic region whose content is gated
  // must acquire the gate BEFORE its runtime lock, or the lock holder can
  // wait on the gate while the gate owner waits on the lock. Gating the
  // region-begin marker itself enforces the gate→lock order.
  std::map<const Directive *, unsigned> GatedRegions;
  for (unsigned I = 0; I < PV.Insts.size(); ++I) {
    if (!DAG.isSequential(DAG.sccOf(I)))
      continue;
    if (const Directive *D =
            Regions.enclosing(PV.Insts[I], DirectiveKind::Critical))
      GatedRegions[D] = DAG.sccOf(I);
    if (const Directive *D =
            Regions.enclosing(PV.Insts[I], DirectiveKind::Atomic))
      GatedRegions[D] = DAG.sccOf(I);
  }
  if (!GatedRegions.empty()) {
    const Module &M = *F.getParent();
    for (unsigned BI : L.blocks())
      for (const Instruction *I : *F.getBlock(BI))
        if (const auto *CI = dyn_cast<CallInst>(I))
          if (CI->getCallee()->getName() == intrinsics::RegionBegin)
            if (const auto *IdC = dyn_cast<ConstantInt>(CI->getArg(0)))
              if (const Directive *D = M.getParallelInfo().getDirective(
                      static_cast<unsigned>(IdC->getValue()))) {
                auto It = GatedRegions.find(D);
                if (It != GatedRegions.end())
                  SCCOf[I] = It->second;
              }
  }

  LS.SCCOf = std::move(SCCOf);
  LS.SCCIsSeq.resize(DAG.numSCCs());
  for (unsigned S = 0; S < DAG.numSCCs(); ++S)
    LS.SCCIsSeq[S] = DAG.isSequential(S);
  LS.Kind = ScheduleKind::HELIX;
  return "";
}

std::string tryDSWP(LoopSchedule &LS, const Function &F,
                    const FunctionAnalysis &FA, const Loop &L,
                    const LoopFacts &Facts, const LoopPlanView &PV,
                    const LoopSCCDAG &DAG, unsigned Threads) {
  if (!PV.TripCountable)
    return "not trip-countable under this view";
  if (std::string R = specSafe(PV, Facts); !R.empty())
    return R;
  if (DAG.numSCCs() < 2)
    return "fewer than two SCCs";
  if (Threads < 2)
    return "needs at least two threads";
  if (Facts.HasDefinedCalls)
    return "calls defined functions (stage recompute model)";
  if (Facts.HasPrint)
    return "prints inside loop";
  if (Facts.WritesThreadPrivate)
    return "writes threadprivate storage";
  for (DirectiveKind K : Facts.RegionKinds)
    if (K == DirectiveKind::Ordered || K == DirectiveKind::Single ||
        K == DirectiveKind::Master)
      return "ordered/single/master region inside";
  BasicBlock *Header = F.getBlock(L.getHeader());
  for (const Directive *D :
       F.getParent()->getParallelInfo().directivesForLoop(Header))
    if (!D->Reductions.empty() || !D->LiveOuts.empty())
      return "reduction/live-out clauses (stage recompute model)";

  // Stage assignment: SCCs in topological order (descending component
  // index — Tarjan emits reverse-topologically), contiguous runs balanced
  // by static instruction count.
  unsigned NumSCCs = DAG.numSCCs();
  unsigned K = std::min({Threads, NumSCCs, 4u});
  std::vector<unsigned> TopoSCC(NumSCCs); // topological position → SCC id
  for (unsigned C = 0; C < NumSCCs; ++C)
    TopoSCC[NumSCCs - 1 - C] = C;
  std::vector<uint64_t> Weight(NumSCCs, 0);
  for (unsigned I = 0; I < PV.Insts.size(); ++I)
    ++Weight[DAG.sccOf(I)];
  uint64_t Total = PV.Insts.size();
  std::vector<unsigned> StageOfSCC(NumSCCs, 0);
  uint64_t Acc = 0;
  unsigned Stage = 0;
  for (unsigned T = 0; T < NumSCCs; ++T) {
    unsigned C = TopoSCC[T];
    // Keep at least one SCC per remaining stage.
    unsigned Remaining = NumSCCs - T;
    if (Stage + 1 < K && (Acc >= (Stage + 1) * Total / K ||
                          Remaining <= K - Stage - 1))
      ++Stage;
    StageOfSCC[C] = Stage;
    Acc += Weight[C];
  }
  unsigned NumStages = Stage + 1;
  if (NumStages < 2)
    return "stage partition collapsed";

  // Carried dependences must stay inside one stage (each stage executes
  // its iterations in order); cross-stage carried edges in topological
  // direction are legal (token order covers them).
  for (const LoopDepEdge &E : PV.Edges) {
    unsigned SS = StageOfSCC[DAG.sccOf(E.Src)];
    unsigned DS = StageOfSCC[DAG.sccOf(E.Dst)];
    if (SS > DS)
      return "dependence against pipeline order";
  }
  if (std::string R = classifyScalars(LS, F, FA, L, Facts); !R.empty())
    return R;
  if (!LS.Reductions.empty()) {
    LS.Privates.clear();
    LS.Reductions.clear();
    return "reduction scalars (stage recompute model)";
  }

  for (unsigned I = 0; I < PV.Insts.size(); ++I) {
    LS.StageOf[PV.Insts[I]] = StageOfSCC[DAG.sccOf(I)];
    LS.InstIndex[PV.Insts[I]] = FA.indexOf(PV.Insts[I]);
  }
  LS.NumStages = NumStages;
  LS.Kind = ScheduleKind::DSWP;
  return "";
}

/// Lowers a speculative schedule's assumption set into the conflict-check
/// table the runtime validator consumes, and numbers every view
/// instruction for deterministic overlay merging.
void lowerSpeculation(LoopSchedule &LS, const FunctionAnalysis &FA,
                      const LoopPlanView &PV) {
  LS.Speculative = true;
  LS.Assumptions = PV.Assumptions;
  auto WatchIdx = [&](const Instruction *I) {
    auto It = LS.WatchOf.find(I);
    if (It != LS.WatchOf.end())
      return It->second;
    unsigned Idx = LS.NumWatched++;
    LS.WatchOf[I] = Idx;
    return Idx;
  };
  for (const SpecAssumption &A : LS.Assumptions)
    LS.AssumedPairs.push_back({WatchIdx(A.Src), WatchIdx(A.Dst)});
  for (const Instruction *I : PV.Insts)
    LS.InstIndex[I] = FA.indexOf(I);
}

void planFunction(RuntimePlan &Plan, const Function &F,
                  const FunctionAnalysis &FA, unsigned Threads,
                  const DepOracleConfig &DepOracles) {
  if (FA.loopInfo().loops().empty())
    return;
  const Module &M = *F.getParent();

  auto Worksharing = [&](const Loop *L) -> bool {
    BasicBlock *Header = F.getBlock(L->getHeader());
    for (const Directive *D : M.getParallelInfo().directivesForLoop(Header))
      if (D->Kind == DirectiveKind::ParallelFor ||
          D->Kind == DirectiveKind::For)
        return true;
    return false;
  };

  // One oracle stack per function; materialize the edge set once and feed
  // it to both consumers (the PS-PDG build and the view), whose validity
  // checks below consume the views they produce.
  DepOracleStack Stack(FA, DepOracles);
  std::vector<DepEdge> DepEdges = buildDepEdges(Stack);
  std::unique_ptr<PSPDG> G;
  if (Plan.Abs == AbstractionKind::PSPDG)
    G = buildPSPDGFromEdges(FA, DepEdges, Plan.Features);
  AbstractionView View(Plan.Abs, FA, std::move(DepEdges), G.get());
  RegionMap Regions(FA);

  // Which loops the abstraction may re-plan (critical-path methodology):
  // PDG outermost only; J&K outermost + worksharing inner (DOALL only);
  // PS-PDG every loop.
  bool InnerWorksharing = Plan.Abs == AbstractionKind::JK;
  bool AllLoops = Plan.Abs == AbstractionKind::PSPDG;

  for (const Loop *L : FA.loopInfo().loops()) {
    bool Planned = L->getDepth() == 1 || AllLoops;
    bool InnerWS = !Planned && InnerWorksharing && Worksharing(L);
    if (!Planned && !InnerWS)
      continue;

    LoopPlanView PV = View.viewFor(*L);
    LoopSCCDAG DAG(PV);
    LoopFacts Facts = collectFacts(F, FA, Regions, *L);

    LoopSchedule LS;
    std::string Common = fillCommon(LS, F, FA, *L, Facts);
    if (!Common.empty()) {
      LS.F = &F;
      LS.Header = L->getHeader();
      LS.Depth = L->getDepth();
      LS.Reason = Common;
      Plan.Loops[{&F, L->getHeader()}] = std::move(LS);
      continue;
    }

    std::string DoallR = tryDOALL(LS, F, FA, *L, Facts, PV, DAG);
    if (DoallR.empty()) {
      LS.Reason = PV.Assumptions.empty() ? "DOALL" : "DOALL (speculative)";
    } else if (InnerWS) {
      // Inner worksharing loops the J&K view cannot prove stay sequential.
      LS.Reason = "DOALL: " + DoallR;
    } else {
      LoopSchedule H = LS; // common fields, no DOALL residue
      H.Privates.clear();
      H.Reductions.clear();
      std::string HelixR = tryHELIX(H, F, FA, *L, Facts, PV, DAG, Regions);
      if (HelixR.empty()) {
        LS = std::move(H);
        LS.Reason = PV.Assumptions.empty() ? "HELIX" : "HELIX (speculative)";
      } else {
        LoopSchedule D = LS;
        D.Privates.clear();
        D.Reductions.clear();
        std::string DswpR = tryDSWP(D, F, FA, *L, Facts, PV, DAG, Threads);
        if (DswpR.empty()) {
          LS = std::move(D);
          LS.Reason = PV.Assumptions.empty() ? "DSWP" : "DSWP (speculative)";
        } else {
          LS.Privates.clear();
          LS.Reductions.clear();
          LS.Reason = "DOALL: " + DoallR + "; HELIX: " + HelixR +
                      "; DSWP: " + DswpR;
        }
      }
    }
    if (LS.Kind != ScheduleKind::Sequential && !PV.Assumptions.empty())
      lowerSpeculation(LS, FA, PV);
    Plan.Loops[{&F, L->getHeader()}] = std::move(LS);
  }
}

} // namespace

RuntimePlan psc::buildRuntimePlan(const Module &M, AbstractionKind Kind,
                                  unsigned Threads, const FeatureSet &Features,
                                  const DepOracleConfig &DepOracles) {
  RuntimePlan Plan;
  Plan.Abs = Kind;
  Plan.Features = Features;
  Plan.Threads = Threads == 0 ? 1 : Threads;
  Plan.MA = std::make_shared<ModuleAnalyses>(M);
  if (Kind == AbstractionKind::OpenMP)
    return Plan; // no compiler plan view
  for (const auto &F : M.functions())
    if (!F->isDeclaration())
      planFunction(Plan, *F, Plan.MA->of(*F), Plan.Threads, DepOracles);
  return Plan;
}
