//===- PlanCompiler.cpp - Runtime schedule selection ----------*- C++ -*-===//
///
/// Derives executable LoopSchedules from the abstraction views. See
/// Schedule.h for the validation contract. The selection order per loop is
/// DOALL > HELIX > DSWP > Sequential; a failed validation step records its
/// reason so `pscc --run-parallel` can report why a loop stayed sequential.
///
/// Speculative plans (assumption-carrying views, DESIGN.md §9–§10) pass
/// through speculation-aware selection: the plan's obligation count and
/// the profile's historical misspeculation rate feed the SpecCostModel
/// (PlanEnumerator.h); a rejected plan is re-derived from the sound
/// alternative view. Value obligations — predicted scalars and promoted
/// custom reductions — are DOALL-only and are lowered into the schedule's
/// prediction/guard tables here.
///
//===----------------------------------------------------------------------===//

#include "runtime/Schedule.h"

#include "analysis/MemoryModel.h"
#include "analysis/Privatization.h"
#include "analysis/ValueSpec.h"
#include "obs/PlanDecision.h"
#include "obs/Trace.h"
#include "parallel/PlanEnumerator.h"
#include "parallel/RegionMap.h"
#include "profiling/DepProfile.h"
#include "pspdg/Fingerprint.h"
#include "pspdg/PSPDGBuilder.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace psc;

const char *psc::scheduleKindName(ScheduleKind K) {
  switch (K) {
  case ScheduleKind::Sequential:
    return "sequential";
  case ScheduleKind::DOALL:
    return "DOALL";
  case ScheduleKind::HELIX:
    return "HELIX";
  case ScheduleKind::DSWP:
    return "DSWP";
  }
  return "?";
}

std::string psc::instDesc(const Instruction *I) {
  std::string S = I->getOpcodeName();
  const Value *Ptr = nullptr;
  if (const auto *LI = dyn_cast<LoadInst>(I))
    Ptr = LI->getPointer();
  else if (const auto *SI = dyn_cast<StoreInst>(I))
    Ptr = SI->getPointer();
  if (Ptr)
    if (const Value *Root = rootStorage(Ptr))
      if (!Root->getName().empty())
        S += " '" + Root->getName() + "'";
  if (const BasicBlock *BB = I->getParent())
    S += " (" + BB->getName() + ")";
  return S;
}

namespace {

bool isScalarStorage(const Value *V) {
  if (const auto *GV = dyn_cast<GlobalVariable>(V))
    return !isa<ArrayType>(GV->getObjectType());
  if (const auto *AI = dyn_cast<AllocaInst>(V))
    return !isa<ArrayType>(AI->getAllocatedType());
  return false;
}

bool isFloatStorage(const Value *V) {
  const Type *Ty = nullptr;
  if (const auto *GV = dyn_cast<GlobalVariable>(V))
    Ty = GV->getObjectType();
  else if (const auto *AI = dyn_cast<AllocaInst>(V))
    Ty = AI->getAllocatedType();
  if (!Ty)
    return false;
  if (const auto *AT = dyn_cast<ArrayType>(Ty))
    Ty = AT->getElement();
  return Ty->isFloat();
}

/// Value-speculation inputs of one planning pass: the training profile
/// (null = value promotions off) with its staleness hash.
struct SpecCtx {
  const DepProfile *Profile = nullptr;
  uint64_t BodyHash = 0;
};

/// Statically collected facts about one loop's body (including nested
/// loops), feeding the schedule validations.
struct LoopFacts {
  const BasicBlock *BodyEntry = nullptr;
  const BasicBlock *Exit = nullptr;
  bool SingleExit = false;
  bool HasRet = false;
  bool HasBarrier = false;
  bool HasDefinedCalls = false;
  bool HasPrint = false;
  bool WritesThreadPrivate = false;
  std::set<const Value *> Written;          ///< Root storages stored to.
  std::set<const Value *> MutexSafeWritten; ///< Every store under a lock.
  std::set<DirectiveKind> RegionKinds;      ///< Regions begun inside.
  std::set<const Instruction *> OrderedInsts;
};

LoopFacts collectFacts(const Function &F, const FunctionAnalysis &FA,
                       const RegionMap &Regions, const Loop &L) {
  LoopFacts Facts;
  const Module &M = *F.getParent();

  // Exit structure: the only exit edge allowed is header → Exit.
  const BasicBlock *Header = F.getBlock(L.getHeader());
  Facts.SingleExit = true;
  for (unsigned BI : L.blocks()) {
    const BasicBlock *BB = F.getBlock(BI);
    for (BasicBlock *Succ : BB->successors()) {
      if (L.contains(Succ->getIndex()))
        continue;
      if (BB != Header || Facts.Exit) {
        Facts.SingleExit = false;
        continue;
      }
      Facts.Exit = Succ;
    }
  }
  if (const auto *CB = dyn_cast_or_null<CondBranchInst>(
          Header->getTerminator())) {
    if (L.contains(CB->getTrueTarget()->getIndex()) &&
        CB->getFalseTarget() == Facts.Exit)
      Facts.BodyEntry = CB->getTrueTarget();
    else if (L.contains(CB->getFalseTarget()->getIndex()) &&
             CB->getTrueTarget() == Facts.Exit)
      Facts.BodyEntry = CB->getFalseTarget();
  }

  std::set<const Value *> LockedWrites, UnlockedWrites;
  for (unsigned BI : L.blocks()) {
    const BasicBlock *BB = F.getBlock(BI);
    for (const Instruction *I : *BB) {
      if (isa<ReturnInst>(I))
        Facts.HasRet = true;
      if (const auto *SI = dyn_cast<StoreInst>(I)) {
        const Value *Root = rootStorage(SI->getPointer());
        Facts.Written.insert(Root);
        if (M.getParallelInfo().isThreadPrivate(Root))
          Facts.WritesThreadPrivate = true;
        if (Regions.inMutualExclusionRegion(I))
          LockedWrites.insert(Root);
        else
          UnlockedWrites.insert(Root);
      }
      if (const auto *CI = dyn_cast<CallInst>(I)) {
        const std::string &Name = CI->getCallee()->getName();
        if (Name == intrinsics::BarrierMarker)
          Facts.HasBarrier = true;
        else if (Name == intrinsics::Print || Name == intrinsics::PrintF)
          Facts.HasPrint = true;
        else if (Name == intrinsics::RegionBegin) {
          if (const auto *IdC = dyn_cast<ConstantInt>(CI->getArg(0)))
            if (const Directive *D = M.getParallelInfo().getDirective(
                    static_cast<unsigned>(IdC->getValue())))
              Facts.RegionKinds.insert(D->Kind);
        } else if (!CI->getCallee()->isDeclaration())
          Facts.HasDefinedCalls = true;
      }
      if (Regions.inOrderedRegion(I))
        Facts.OrderedInsts.insert(I);
    }
  }
  for (const Value *V : LockedWrites)
    if (!UnlockedWrites.count(V))
      Facts.MutexSafeWritten.insert(V);
  (void)FA;
  return Facts;
}

/// Fills iteration space + privatization lists shared by all kinds.
/// Returns empty string on success, else the failure reason.
std::string fillCommon(LoopSchedule &LS, const Function &F,
                       const FunctionAnalysis &FA, const Loop &L,
                       const LoopFacts &Facts) {
  const ForLoopMeta *Meta = FA.forMeta(&L);
  if (!Meta || !Meta->Canonical)
    return "not a canonical counted loop";
  long Trip = Meta->tripCount();
  if (Trip < 0)
    return "non-constant trip count";
  if (!Facts.SingleExit || !Facts.Exit || !Facts.BodyEntry)
    return "irregular exit structure";
  if (Facts.HasRet)
    return "return inside loop";
  if (Facts.HasBarrier)
    return "barrier inside loop";

  LS.F = &F;
  LS.Header = L.getHeader();
  LS.Depth = L.getDepth();
  LS.IVStorage = Meta->CounterStorage;
  LS.Init = Meta->InitVal;
  LS.Step = Meta->Step;
  LS.Trip = Trip;
  LS.BodyEntry = Facts.BodyEntry;
  LS.Exit = Facts.Exit;
  LS.Blocks.insert(L.blocks().begin(), L.blocks().end());
  return "";
}

/// Storages written by the loop that are registered by a module-scope
/// `reducible(var : fn)` pragma. The abstraction views drop such a
/// variable's accumulation dependences (the PS-PDG reducible trait), but
/// the engine can only run them with a promoted combiner (Schedule.h
/// SpecReduction); unpromoted, scheduling such a loop in parallel would
/// race concurrent read-modify-writes on the shared object
/// (nondeterministic accumulation order), violating sequential output
/// equivalence.
std::vector<const ReductionClause *>
customReducibleWrites(const Module &M, const LoopFacts &Facts) {
  std::vector<const ReductionClause *> Out;
  for (const Directive &D : M.getParallelInfo().directives()) {
    if (D.isLoopDirective())
      continue;
    for (const ReductionClause &R : D.Reductions)
      if (R.Op == ReduceOp::Custom && Facts.Written.count(R.Var.Storage))
        Out.push_back(&R);
  }
  return Out;
}

/// Privatization classification of the written scalars. Returns "" on
/// success (Privates/Reductions — and under \p AllowValueSpec the value
/// predictions / promoted reductions — filled), else the failure reason.
/// (Loop-level custom reduction clauses are rejected here too — the
/// "custom reduction operator" return below — so both spellings of a
/// custom reduction keep their loop sequential unless promoted.)
std::string classifyScalars(LoopSchedule &LS, const Function &F,
                            const FunctionAnalysis &FA, const Loop &L,
                            const LoopFacts &Facts, const LoopPlanView &PV,
                            bool AllowValueSpec, const SpecCtx &Spec) {
  const Module &M = *F.getParent();
  BasicBlock *Header = F.getBlock(L.getHeader());

  // Custom-reducible storage: promoted to a runnable reduction when value
  // speculation is on and the profile confirms the shape (ValueSpec.h);
  // rejected otherwise — exactly the sound engine's historical guard.
  for (const ReductionClause *R : customReducibleWrites(M, Facts)) {
    if (!AllowValueSpec || !Spec.Profile)
      return "writes custom-reducible storage (no runtime combiner)";
    ReductionShape Shape = analyzeReductionShape(FA, L, R->Var.Storage,
                                                 Spec.Profile, Spec.BodyHash);
    if (!Shape.Viable)
      return "writes custom-reducible storage (" + Shape.Reason + ")";
    LS.SpecReductions.push_back({Shape.Storage, Shape.Combiner});
    for (const Instruction *I : Shape.ColdAccesses) {
      unsigned G = static_cast<unsigned>(LS.GuardWatchOf.size());
      LS.GuardWatchOf.emplace(I, G);
    }
  }

  // Value-speculated scalars this view assumes (per-storage assumptions
  // recorded by AbstractionView); resolved against the profile's class.
  std::set<const Value *> ValueSpecScalars;
  if (AllowValueSpec)
    for (const ValueAssumption &A : PV.ValueAssumptions)
      if (A.IsScalar && isScalarStorage(A.Storage))
        ValueSpecScalars.insert(A.Storage);

  std::set<const Value *> Priv = computeIterationPrivateScalars(FA, L);
  std::map<const Value *, ReduceOp> Reds;
  for (const Directive *D : M.getParallelInfo().directivesForLoop(Header)) {
    for (const VarRef &V : D->Privates)
      Priv.insert(V.Storage);
    for (const LiveOutClause &C : D->LiveOuts)
      Priv.insert(C.Var.Storage);
    for (const ReductionClause &R : D->Reductions) {
      if (R.Op == ReduceOp::Custom)
        return "custom reduction operator";
      Reds[R.Var.Storage] = R.Op;
    }
  }

  for (const Value *W : Facts.Written) {
    if (W == LS.IVStorage)
      continue;
    if (!isScalarStorage(W)) {
      // Arrays and argument-aliased objects: safety comes from the view's
      // dependence edges (or the runtime lock for orderless conflicts).
      continue;
    }
    if (Reds.count(W))
      continue;
    if (Priv.count(W))
      continue;
    if (Facts.MutexSafeWritten.count(W))
      continue; // orderless update under the runtime region lock
    if (ValueSpecScalars.count(W)) {
      // Privatized + predicted + validated (DESIGN.md §10).
      const DepProfile::ValueObs *Obs = Spec.Profile->valueObs(
          F.getName(), L.getHeader(), valueStorageKey(W));
      if (!Obs || Obs->Kind == ValueClassKind::Varying)
        return std::string("value-speculated scalar '") + W->getName() +
               "' has no usable profile class";
      ValuePrediction P;
      P.Storage = W;
      P.Kind = Obs->Kind;
      P.IsFloat = Obs->IsFloat;
      P.StrideI = Obs->StrideI;
      P.StrideF = Obs->StrideF;
      LS.ValuePreds.push_back(P);
      continue;
    }
    return std::string("unprivatizable scalar write to '") +
           (W->getName().empty() ? "?" : W->getName()) + "'";
  }

  for (const Value *P : Priv)
    LS.Privates.push_back({P});
  for (auto &[V, Op] : Reds)
    LS.Reductions.push_back({V, Op, isFloatStorage(V)});
  return "";
}

/// Extra validation a *speculative* schedule needs beyond its kind's own
/// checks: the checkpoint mechanism shadows every store and commits only
/// after validation, which cannot express in-place locked read-modify-write
/// updates (concurrent critical/atomic regions would each update a private
/// overlay and lose increments on merge). Value obligations checkpoint
/// through the same overlays, so the same restriction applies.
std::string specSafe(bool Speculative, const LoopFacts &Facts) {
  if (!Speculative)
    return "";
  if (Facts.RegionKinds.count(DirectiveKind::Critical) ||
      Facts.RegionKinds.count(DirectiveKind::Atomic))
    return "speculative plan cannot checkpoint critical/atomic regions";
  return "";
}

std::string tryDOALL(LoopSchedule &LS, const Function &F,
                     const FunctionAnalysis &FA, const Loop &L,
                     const LoopFacts &Facts, const LoopPlanView &PV,
                     const LoopSCCDAG &DAG, const SpecCtx &Spec) {
  if (!PV.TripCountable)
    return "not trip-countable under this view";
  if (std::string R = specSafe(!PV.Assumptions.empty(), Facts); !R.empty())
    return R;
  if (!DAG.allParallel())
    return "sequential SCCs remain";
  for (const LoopDepEdge &E : PV.Edges)
    if (E.CarriedAtLoop)
      return "loop-carried dependence remains";
  if (Facts.WritesThreadPrivate)
    return "writes threadprivate storage";
  for (DirectiveKind K : Facts.RegionKinds)
    if (K == DirectiveKind::Ordered || K == DirectiveKind::Single ||
        K == DirectiveKind::Master)
      return "ordered/single/master region inside";
  if (std::string R = classifyScalars(LS, F, FA, L, Facts, PV,
                                      /*AllowValueSpec=*/true, Spec);
      !R.empty())
    return R;
  // Value obligations discovered during classification checkpoint through
  // the speculative overlays too.
  if (std::string R = specSafe(LS.hasValueSpec(), Facts); !R.empty()) {
    LS.ValuePreds.clear();
    LS.SpecReductions.clear();
    LS.GuardWatchOf.clear();
    LS.Privates.clear();
    LS.Reductions.clear();
    return R;
  }

  BasicBlock *Header = F.getBlock(L.getHeader());
  for (const Directive *D :
       F.getParent()->getParallelInfo().directivesForLoop(Header))
    if (D->ChunkSize > 0)
      LS.Chunk = D->ChunkSize;
  LS.Kind = ScheduleKind::DOALL;
  return "";
}

std::string tryHELIX(LoopSchedule &LS, const Function &F,
                     const FunctionAnalysis &FA, const Loop &L,
                     const LoopFacts &Facts, const LoopPlanView &PV,
                     const LoopSCCDAG &DAG, const RegionMap &Regions,
                     const SpecCtx &Spec) {
  if (!PV.TripCountable)
    return "not trip-countable under this view";
  if (std::string R = specSafe(!PV.Assumptions.empty(), Facts); !R.empty())
    return R;
  if (DAG.numSCCs() == 0 ||
      DAG.numSequentialSCCs() >= DAG.numSCCs())
    return "no parallel SCCs to overlap";
  if (Facts.WritesThreadPrivate)
    return "writes threadprivate storage";
  for (DirectiveKind K : Facts.RegionKinds)
    if (K == DirectiveKind::Single || K == DirectiveKind::Master)
      return "single/master region inside";
  // Every carried dependence must land in a sequential SCC: the
  // iteration-order gate serializes exactly those instructions.
  std::map<const Instruction *, unsigned> SCCOf;
  for (unsigned I = 0; I < PV.Insts.size(); ++I)
    SCCOf[PV.Insts[I]] = DAG.sccOf(I);
  for (const LoopDepEdge &E : PV.Edges)
    if (E.CarriedAtLoop && !DAG.isSequential(DAG.sccOf(E.Dst)))
      return "carried dependence into a parallel SCC";
  // Ordered-region content must be gated too (iteration order).
  for (const Instruction *I : Facts.OrderedInsts) {
    auto It = SCCOf.find(I);
    if (It != SCCOf.end() && !DAG.isSequential(It->second))
      return "ordered region content not sequential";
  }
  // Value obligations privatize per worker — inexpressible under the gate
  // model, so HELIX plans never carry them (AllowValueSpec off).
  if (std::string R = classifyScalars(LS, F, FA, L, Facts, PV,
                                      /*AllowValueSpec=*/false, Spec);
      !R.empty())
    return R;

  // Deadlock avoidance: a critical/atomic region whose content is gated
  // must acquire the gate BEFORE its runtime lock, or the lock holder can
  // wait on the gate while the gate owner waits on the lock. Gating the
  // region-begin marker itself enforces the gate→lock order.
  std::map<const Directive *, unsigned> GatedRegions;
  for (unsigned I = 0; I < PV.Insts.size(); ++I) {
    if (!DAG.isSequential(DAG.sccOf(I)))
      continue;
    if (const Directive *D =
            Regions.enclosing(PV.Insts[I], DirectiveKind::Critical))
      GatedRegions[D] = DAG.sccOf(I);
    if (const Directive *D =
            Regions.enclosing(PV.Insts[I], DirectiveKind::Atomic))
      GatedRegions[D] = DAG.sccOf(I);
  }
  if (!GatedRegions.empty()) {
    const Module &M = *F.getParent();
    for (unsigned BI : L.blocks())
      for (const Instruction *I : *F.getBlock(BI))
        if (const auto *CI = dyn_cast<CallInst>(I))
          if (CI->getCallee()->getName() == intrinsics::RegionBegin)
            if (const auto *IdC = dyn_cast<ConstantInt>(CI->getArg(0)))
              if (const Directive *D = M.getParallelInfo().getDirective(
                      static_cast<unsigned>(IdC->getValue()))) {
                auto It = GatedRegions.find(D);
                if (It != GatedRegions.end())
                  SCCOf[I] = It->second;
              }
  }

  LS.SCCOf = std::move(SCCOf);
  LS.SCCIsSeq.resize(DAG.numSCCs());
  for (unsigned S = 0; S < DAG.numSCCs(); ++S)
    LS.SCCIsSeq[S] = DAG.isSequential(S);
  LS.Kind = ScheduleKind::HELIX;
  return "";
}

std::string tryDSWP(LoopSchedule &LS, const Function &F,
                    const FunctionAnalysis &FA, const Loop &L,
                    const LoopFacts &Facts, const LoopPlanView &PV,
                    const LoopSCCDAG &DAG, unsigned Threads,
                    const SpecCtx &Spec) {
  if (!PV.TripCountable)
    return "not trip-countable under this view";
  if (std::string R = specSafe(!PV.Assumptions.empty(), Facts); !R.empty())
    return R;
  if (DAG.numSCCs() < 2)
    return "fewer than two SCCs";
  if (Threads < 2)
    return "needs at least two threads";
  if (Facts.HasDefinedCalls)
    return "calls defined functions (stage recompute model)";
  if (Facts.HasPrint)
    return "prints inside loop";
  if (Facts.WritesThreadPrivate)
    return "writes threadprivate storage";
  for (DirectiveKind K : Facts.RegionKinds)
    if (K == DirectiveKind::Ordered || K == DirectiveKind::Single ||
        K == DirectiveKind::Master)
      return "ordered/single/master region inside";
  BasicBlock *Header = F.getBlock(L.getHeader());
  for (const Directive *D :
       F.getParent()->getParallelInfo().directivesForLoop(Header))
    if (!D->Reductions.empty() || !D->LiveOuts.empty())
      return "reduction/live-out clauses (stage recompute model)";

  // Stage assignment: SCCs in topological order (descending component
  // index — Tarjan emits reverse-topologically), contiguous runs balanced
  // by static instruction count.
  unsigned NumSCCs = DAG.numSCCs();
  unsigned K = std::min({Threads, NumSCCs, 4u});
  std::vector<unsigned> TopoSCC(NumSCCs); // topological position → SCC id
  for (unsigned C = 0; C < NumSCCs; ++C)
    TopoSCC[NumSCCs - 1 - C] = C;
  std::vector<uint64_t> Weight(NumSCCs, 0);
  for (unsigned I = 0; I < PV.Insts.size(); ++I)
    ++Weight[DAG.sccOf(I)];
  uint64_t Total = PV.Insts.size();
  std::vector<unsigned> StageOfSCC(NumSCCs, 0);
  uint64_t Acc = 0;
  unsigned Stage = 0;
  for (unsigned T = 0; T < NumSCCs; ++T) {
    unsigned C = TopoSCC[T];
    // Keep at least one SCC per remaining stage.
    unsigned Remaining = NumSCCs - T;
    if (Stage + 1 < K && (Acc >= (Stage + 1) * Total / K ||
                          Remaining <= K - Stage - 1))
      ++Stage;
    StageOfSCC[C] = Stage;
    Acc += Weight[C];
  }
  unsigned NumStages = Stage + 1;
  if (NumStages < 2)
    return "stage partition collapsed";

  // Carried dependences must stay inside one stage (each stage executes
  // its iterations in order); cross-stage carried edges in topological
  // direction are legal (token order covers them).
  for (const LoopDepEdge &E : PV.Edges) {
    unsigned SS = StageOfSCC[DAG.sccOf(E.Src)];
    unsigned DS = StageOfSCC[DAG.sccOf(E.Dst)];
    if (SS > DS)
      return "dependence against pipeline order";
  }
  if (std::string R = classifyScalars(LS, F, FA, L, Facts, PV,
                                      /*AllowValueSpec=*/false, Spec);
      !R.empty())
    return R;
  if (!LS.Reductions.empty()) {
    LS.Privates.clear();
    LS.Reductions.clear();
    return "reduction scalars (stage recompute model)";
  }

  for (unsigned I = 0; I < PV.Insts.size(); ++I) {
    LS.StageOf[PV.Insts[I]] = StageOfSCC[DAG.sccOf(I)];
    LS.InstIndex[PV.Insts[I]] = FA.indexOf(PV.Insts[I]);
  }
  LS.NumStages = NumStages;
  LS.Kind = ScheduleKind::DSWP;
  return "";
}

/// Lowers a speculative schedule's assumption set into the conflict-check
/// table the runtime validator consumes, the value obligations into their
/// watch tables, and numbers every view instruction for deterministic
/// overlay merging.
void lowerSpeculation(LoopSchedule &LS, const FunctionAnalysis &FA,
                      const LoopPlanView &PV) {
  LS.Speculative = true;
  LS.Assumptions = PV.Assumptions;
  auto WatchIdx = [&](const Instruction *I) {
    auto It = LS.WatchOf.find(I);
    if (It != LS.WatchOf.end())
      return It->second;
    unsigned Idx = LS.NumWatched++;
    LS.WatchOf[I] = Idx;
    return Idx;
  };
  for (const SpecAssumption &A : LS.Assumptions)
    LS.AssumedPairs.push_back({WatchIdx(A.Src), WatchIdx(A.Dst)});
  // Value watches: every access of a value-speculated scalar logs (stores
  // with their value) so the validator can check observed == predicted and
  // extract final values.
  for (unsigned P = 0; P < LS.ValuePreds.size(); ++P) {
    const Value *Storage = LS.ValuePreds[P].Storage;
    for (const Instruction *I : PV.Insts) {
      const Value *Ptr = nullptr;
      if (const auto *LI = dyn_cast<LoadInst>(I))
        Ptr = LI->getPointer();
      else if (const auto *SI = dyn_cast<StoreInst>(I))
        Ptr = SI->getPointer();
      if (Ptr && rootStorage(Ptr) == Storage)
        LS.ValueWatchOf[I] = P;
    }
  }
  for (const Instruction *I : PV.Insts)
    LS.InstIndex[I] = FA.indexOf(I);
}

// --- Grain pass (DESIGN.md §11) ---------------------------------------------

/// Estimated dynamic instructions of ONE iteration of \p L: the static
/// instruction count of the loop's own blocks plus, for each immediate
/// sub-loop, its constant trip (or GrainConfig::DefaultTrip when unknown)
/// times its own per-iteration estimate, recursively. Branchy bodies
/// overestimate (every block counts once per iteration); that bias is
/// conservative for the demotion decision only when work is *under*
/// the threshold, so MinSpeedup absorbs the slack.
double estimateIterWork(const Function &F, const FunctionAnalysis &FA,
                        const Loop &L, const GrainConfig &G) {
  std::set<unsigned> SubBlocks;
  double W = 0;
  for (const Loop *Sub : L.subLoops()) {
    const ForLoopMeta *Meta = FA.forMeta(Sub);
    long Trip = Meta && Meta->Canonical ? Meta->tripCount() : -1;
    if (Trip < 0)
      Trip = G.DefaultTrip;
    W += static_cast<double>(Trip) * estimateIterWork(F, FA, *Sub, G);
    SubBlocks.insert(Sub->blocks().begin(), Sub->blocks().end());
  }
  for (unsigned BI : L.blocks()) {
    if (SubBlocks.count(BI))
      continue;
    const BasicBlock *BB = F.getBlock(BI);
    for (const Instruction *I : *BB) {
      (void)I;
      W += 1;
    }
  }
  return W;
}

/// Applies the calibrated cost model to one selected schedule: estimates
/// the per-invocation parallel runtime from the schedule kind's overhead
/// profile, demotes to Sequential when the modeled speedup falls under
/// GrainConfig::MinSpeedup, and sizes DOALL chunks so each carries at
/// least MinChunkWork interpreted instructions. See DESIGN.md §11 for the
/// model and the calibration of the constants.
void applyGrain(LoopSchedule &LS, const Function &F,
                const FunctionAnalysis &FA, const Loop &L, unsigned Threads,
                const GrainConfig &G) {
  if (LS.Kind == ScheduleKind::Sequential)
    return;
  if (G.ForcedChunk > 0) {
    // Escape hatch: pin the chunk size, skip the model entirely.
    if (LS.Kind == ScheduleKind::DOALL)
      LS.Chunk = G.ForcedChunk;
    return;
  }

  double IterWork = std::max(1.0, estimateIterWork(F, FA, L, G));
  double Trip = static_cast<double>(std::max<long>(1, LS.Trip));
  double Tseq = Trip * IterWork;
  unsigned W = G.Workers ? G.Workers : Threads;
  if (W == 0)
    W = 1;

  double Tpar = 0;
  long NewChunk = 0;
  switch (LS.Kind) {
  case ScheduleKind::DOALL: {
    long Chunk = LS.Chunk > 0 ? LS.Chunk
                              : std::max<long>(1, LS.Trip / (static_cast<long>(
                                                     Threads) *
                                                 4));
    // Auto-chunk: grow default chunks until each carries MinChunkWork.
    if (LS.Chunk == 0) {
      long Need = static_cast<long>(G.MinChunkWork / IterWork) + 1;
      if (Need > Chunk)
        Chunk = std::min(std::max<long>(1, LS.Trip), Need);
    }
    long NumChunks = (std::max<long>(1, LS.Trip) + Chunk - 1) / Chunk;
    double Weff = std::min<double>(W, static_cast<double>(NumChunks));
    Tpar = Tseq / Weff + G.SpawnCost * static_cast<double>(NumChunks) +
           G.JoinCost;
    NewChunk = Chunk;
    break;
  }
  case ScheduleKind::HELIX: {
    // Amdahl over the view's SCC classification: gated (sequential-SCC)
    // instructions serialize, the rest divides across workers, and every
    // iteration pays the gate handoff.
    uint64_t Seq = 0, Tot = 0;
    for (const auto &[I, SCC] : LS.SCCOf) {
      (void)I;
      ++Tot;
      if (SCC < LS.SCCIsSeq.size() && LS.SCCIsSeq[SCC])
        ++Seq;
    }
    double SeqFrac = Tot ? static_cast<double>(Seq) / Tot : 1.0;
    double Weff = std::min<double>(W, Trip);
    Tpar = Tseq * SeqFrac + Tseq * (1.0 - SeqFrac) / Weff +
           G.GateCost * Trip + G.SpawnCost * W + G.JoinCost;
    break;
  }
  case ScheduleKind::DSWP:
    // Stage-recompute model: every stage interprets the full body and
    // commits only its own SCCs' stores, so the wall-clock lower bound is
    // the full sequential work plus token traffic — the modeled speedup
    // never clears MinSpeedup. DSWP schedules exist for pipeline-semantics
    // validation (grain off); a grain-enabled plan always demotes them.
    Tpar = Tseq + G.TokenCost * Trip * LS.NumStages +
           G.SpawnCost * LS.NumStages + G.JoinCost;
    break;
  case ScheduleKind::Sequential:
    return;
  }

  double Speedup = Tpar > 0 ? Tseq / Tpar : 0.0;
  if (Speedup < G.MinSpeedup) {
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "%s below parallel grain (modeled speedup %.2fx < %.2fx "
                  "on %u workers)",
                  scheduleKindName(LS.Kind), Speedup, G.MinSpeedup, W);
    LoopSchedule Seq;
    Seq.F = LS.F;
    Seq.Header = LS.Header;
    Seq.Depth = LS.Depth;
    Seq.Reason = Buf;
    LS = std::move(Seq);
    return;
  }
  if (LS.Kind == ScheduleKind::DOALL && LS.Chunk == 0)
    LS.Chunk = NewChunk;
}

/// Derives the best schedule for one loop from one plan view, running the
/// DOALL > HELIX > DSWP chain. \p InnerWS marks J&K inner worksharing
/// loops (DOALL or nothing). \p Dec (optional) receives the candidate
/// verdicts for the plan-decision log.
LoopSchedule scheduleFromView(const Function &F, const FunctionAnalysis &FA,
                              const Loop &L, const LoopFacts &Facts,
                              const LoopPlanView &PV, const RegionMap &Regions,
                              unsigned Threads, bool InnerWS,
                              const SpecCtx &Spec,
                              obs::LoopDecision *Dec = nullptr) {
  LoopSCCDAG DAG(PV);
  LoopSchedule LS;
  auto Candidate = [&](const char *Kind, const std::string &Verdict) {
    if (Dec)
      Dec->Candidates.push_back(
          {Kind, Verdict.empty(), Verdict.empty() ? "selected" : Verdict});
  };
  std::string Common = fillCommon(LS, F, FA, L, Facts);
  if (!Common.empty()) {
    LS.F = &F;
    LS.Header = L.getHeader();
    LS.Depth = L.getDepth();
    LS.Reason = Common;
    return LS;
  }

  auto ClearResidue = [](LoopSchedule &S) {
    S.Privates.clear();
    S.Reductions.clear();
    S.ValuePreds.clear();
    S.SpecReductions.clear();
    S.GuardWatchOf.clear();
  };

  std::string DoallR = tryDOALL(LS, F, FA, L, Facts, PV, DAG, Spec);
  Candidate("DOALL", DoallR);
  bool Spd = !PV.Assumptions.empty() || LS.hasValueSpec();
  if (DoallR.empty()) {
    LS.Reason = Spd ? "DOALL (speculative)" : "DOALL";
  } else if (InnerWS) {
    // Inner worksharing loops the J&K view cannot prove stay sequential.
    LS.Reason = "DOALL: " + DoallR;
  } else {
    LoopSchedule H = LS; // common fields, no DOALL residue
    ClearResidue(H);
    std::string HelixR = tryHELIX(H, F, FA, L, Facts, PV, DAG, Regions, Spec);
    Candidate("HELIX", HelixR);
    if (HelixR.empty()) {
      LS = std::move(H);
      LS.Reason = PV.Assumptions.empty() ? "HELIX" : "HELIX (speculative)";
    } else {
      LoopSchedule D = LS;
      ClearResidue(D);
      std::string DswpR = tryDSWP(D, F, FA, L, Facts, PV, DAG, Threads, Spec);
      Candidate("DSWP", DswpR);
      if (DswpR.empty()) {
        LS = std::move(D);
        LS.Reason = PV.Assumptions.empty() ? "DSWP" : "DSWP (speculative)";
      } else {
        ClearResidue(LS);
        LS.Reason = "DOALL: " + DoallR + "; HELIX: " + HelixR +
                    "; DSWP: " + DswpR;
      }
    }
  }
  if (LS.Kind != ScheduleKind::Sequential &&
      (!PV.Assumptions.empty() || LS.hasValueSpec()))
    lowerSpeculation(LS, FA, PV);
  return LS;
}

/// Fills the static (pre-selection) half of a LoopDecision: identity,
/// oracle-attributed carried edges, and the view's assumption sets.
void describeView(obs::LoopDecision &Dec, const Function &F,
                  AbstractionKind Abs, const Loop &L,
                  const LoopPlanView &PV) {
  Dec.Fn = F.getName();
  Dec.Header = F.getBlock(L.getHeader())->getName();
  Dec.HeaderIdx = L.getHeader();
  Dec.Depth = L.getDepth();
  Dec.Abstraction = abstractionName(Abs);
  for (const LoopDepEdge &E : PV.Edges) {
    if (!E.CarriedAtLoop)
      continue;
    obs::PlanBlocker B;
    B.Src = instDesc(PV.Insts[E.Src]);
    B.Dst = instDesc(PV.Insts[E.Dst]);
    B.Oracle = E.Oracle ? E.Oracle : "";
    B.Must = E.Must;
    Dec.Blockers.push_back(std::move(B));
  }
  for (const SpecAssumption &A : PV.Assumptions)
    Dec.Assumptions.push_back(instDesc(A.Src) + " -> " + instDesc(A.Dst));
  for (const ValueAssumption &A : PV.ValueAssumptions) {
    std::string Name = "?";
    if (A.Storage && !A.Storage->getName().empty())
      Name = A.Storage->getName();
    Dec.ValueAssumptions.push_back(
        "'" + Name + "' " + (A.IsScalar ? "(predicted scalar)"
                                        : "(promoted reduction)"));
  }
}

void planFunction(RuntimePlan &Plan, const Function &F,
                  const FunctionAnalysis &FA, unsigned Threads,
                  const DepOracleConfig &DepOracles,
                  const GrainConfig &Grain,
                  obs::PlanDecisionLog *Decisions) {
  if (FA.loopInfo().loops().empty())
    return;
  obs::TraceSpan Span("plan.function", "fn=%s", F.getName().c_str());
  const Module &M = *F.getParent();

  auto Worksharing = [&](const Loop *L) -> bool {
    BasicBlock *Header = F.getBlock(L->getHeader());
    for (const Directive *D : M.getParallelInfo().directivesForLoop(Header))
      if (D->Kind == DirectiveKind::ParallelFor ||
          D->Kind == DirectiveKind::For)
        return true;
    return false;
  };

  // One oracle stack per function; materialize the edge set once and feed
  // it to both consumers (the PS-PDG build and the view), whose validity
  // checks below consume the views they produce.
  DepOracleStack Stack(FA, DepOracles);
  std::vector<DepEdge> DepEdges = buildDepEdges(Stack);
  std::unique_ptr<PSPDG> G;
  if (Plan.Abs == AbstractionKind::PSPDG)
    G = buildPSPDGFromEdges(FA, DepEdges, Plan.Features);
  AbstractionView View(Plan.Abs, FA, std::move(DepEdges), G.get());
  RegionMap Regions(FA);

  SpecCtx Spec;
  if (DepOracles.wantsValueSpec() && DepOracles.SpecProfile) {
    Spec.Profile = DepOracles.SpecProfile;
    Spec.BodyHash = functionBodyHash(F);
  }

  // Which loops the abstraction may re-plan (critical-path methodology):
  // PDG outermost only; J&K outermost + worksharing inner (DOALL only);
  // PS-PDG every loop.
  bool InnerWorksharing = Plan.Abs == AbstractionKind::JK;
  bool AllLoops = Plan.Abs == AbstractionKind::PSPDG;

  for (const Loop *L : FA.loopInfo().loops()) {
    bool Planned = L->getDepth() == 1 || AllLoops;
    bool InnerWS = !Planned && InnerWorksharing && Worksharing(L);
    if (!Planned && !InnerWS)
      continue;

    LoopPlanView PV = View.viewFor(*L);
    LoopFacts Facts = collectFacts(F, FA, Regions, *L);

    obs::LoopDecision Dec;
    obs::LoopDecision *DecP = Decisions ? &Dec : nullptr;
    if (DecP)
      describeView(Dec, F, Plan.Abs, *L, PV);

    LoopSchedule LS = scheduleFromView(F, FA, *L, Facts, PV, Regions,
                                       Threads, InnerWS, Spec, DecP);

    // Speculation-aware selection (ROADMAP): a speculative schedule is
    // costed by its obligation count and the profile's historical
    // misspeculation rate; rejection falls back to the sound alternative
    // view — whatever schedule the sound stack alone justifies.
    if (LS.Speculative && DepOracles.SpecProfile) {
      unsigned Obligations =
          static_cast<unsigned>(LS.Assumptions.size() + LS.ValuePreds.size() +
                                LS.SpecReductions.size());
      double Cost = 0.0;
      bool Accepted = speculationAccepted(DepOracles.SpecProfile, F.getName(),
                                          L->getHeader(), Obligations, &Cost);
      uint64_t Attempts = 0, Misspecs = 0;
      DepOracles.SpecProfile->specHistory(F.getName(), L->getHeader(),
                                          Attempts, Misspecs);
      if (DecP) {
        Dec.SpecConsidered = true;
        Dec.SpecRejected = !Accepted;
        Dec.SpecCost = Cost;
        Dec.SpecThreshold = SpecCostModel().AcceptThreshold;
        Dec.SpecAttempts = Attempts;
        Dec.SpecMisspecs = Misspecs;
      }
      if (!Accepted) {
        obs::traceInstantf("plan.spec_rejected", "fn=%s header=%u cost=%.0f",
                           F.getName().c_str(), L->getHeader(), Cost);
        LoopPlanView Sound = soundAlternative(PV);
        if (DecP)
          Dec.Candidates.clear(); // re-derivation: keep the sound verdicts
        LS = scheduleFromView(F, FA, *L, Facts, Sound, Regions, Threads,
                              InnerWS, SpecCtx{}, DecP);
        LS.Reason += " [speculation rejected by cost model: " +
                     std::to_string(Misspecs) + "/" +
                     std::to_string(Attempts) + " misspeculated]";
      }
    }
    if (Grain.Enabled) {
      ScheduleKind Before = LS.Kind;
      applyGrain(LS, F, FA, *L, Threads, Grain);
      if (DecP && LS.Kind != Before) {
        Dec.GrainNote = LS.Reason; // "<kind> below parallel grain (...)"
        obs::traceInstantf("plan.grain_demoted", "fn=%s header=%u",
                           F.getName().c_str(), L->getHeader());
      }
    }
    if (DecP) {
      Dec.Final = scheduleKindName(LS.Kind);
      Dec.Reason = LS.Reason;
      Decisions->Loops.push_back(std::move(Dec));
    }
    Plan.Loops[{&F, L->getHeader()}] = std::move(LS);
  }
}

} // namespace

RuntimePlan psc::buildRuntimePlan(const Module &M, AbstractionKind Kind,
                                  unsigned Threads, const FeatureSet &Features,
                                  const DepOracleConfig &DepOracles,
                                  const GrainConfig &Grain,
                                  obs::PlanDecisionLog *Decisions) {
  obs::TraceSpan Span("plan.build", "abs=%s threads=%u",
                      abstractionName(Kind), Threads);
  RuntimePlan Plan;
  Plan.Abs = Kind;
  Plan.Features = Features;
  Plan.Threads = Threads == 0 ? 1 : Threads;
  Plan.MA = std::make_shared<ModuleAnalyses>(M);
  if (Kind == AbstractionKind::OpenMP)
    return Plan; // no compiler plan view
  for (const auto &F : M.functions())
    if (!F->isDeclaration())
      planFunction(Plan, *F, Plan.MA->of(*F), Plan.Threads, DepOracles,
                   Grain, Decisions);
  return Plan;
}
