//===- Schedule.h - Runtime parallel schedules for planned loops -*- C++ -*-===//
///
/// \file
/// The runtime plan: for every loop an abstraction may re-plan, the
/// concrete schedule the parallel engine will execute — or Sequential with
/// a reason string when the loop fails runtime validation. The plan
/// compiler (PlanCompiler.cpp) derives schedules from the same
/// AbstractionView/LoopSCCDAG pipeline the paper's §6 experiments use, but
/// applies *stricter* checks: a schedule must not only be justified by the
/// abstraction, it must be executable by the engine while reproducing the
/// program's sequential output exactly.
///
/// Validation summary (engine contract):
///   * iteration space — canonical counted loop, constant bounds, single
///     exit through the header, no return inside;
///   * DOALL  — zero loop-carried edges in the view; every written scalar
///     is the IV, clause-private, clause-reduction, iteration-private, or
///     written only under critical/atomic (runtime lock, orderless);
///   * HELIX  — every carried edge lands in a sequential SCC (the
///     iteration-order gate covers it); ordered-region content sequential;
///   * DSWP   — SCC stages in topological order; carried edges stay inside
///     a stage; no defined calls / prints / reductions (stage recompute
///     model);
///   * loops writing threadprivate storage are never parallelized: their
///     dependence removal encodes per-thread semantics the sequential
///     output model cannot honor;
///   * loops writing custom-reducible storage (`reducible(var : fn)`) are
///     never parallelized: the views drop the accumulation dependences,
///     but the engine has no combiner for application-specific reductions,
///     and racing the shared object would break output determinism.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_RUNTIME_SCHEDULE_H
#define PSPDG_RUNTIME_SCHEDULE_H

#include "analysis/FunctionAnalysis.h"
#include "ir/ParallelInfo.h"
#include "parallel/AbstractionView.h"
#include "profiling/DepProfile.h"
#include "pspdg/Features.h"

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace psc {

namespace obs {
struct PlanDecisionLog;
} // namespace obs

enum class ScheduleKind { Sequential, DOALL, HELIX, DSWP };

const char *scheduleKindName(ScheduleKind K);

/// One-line deterministic summary of a loop instruction — opcode, accessed
/// storage (when a memory access), defining block. The shared renderer
/// behind the plan-decision log's assumption/blocker lines and the
/// misspeculation flight recorder (obs/Forensics.h).
std::string instDesc(const Instruction *I);

/// A scalar storage privatized per worker (copy-in, last-iteration-owner
/// copy-out).
struct PrivateVar {
  const Value *Storage = nullptr;
};

/// A reduction scalar: per-worker identity-initialized partials, merged in
/// worker order after the join.
struct ReductionVar {
  const Value *Storage = nullptr;
  ReduceOp Op = ReduceOp::Add;
  bool IsFloat = false;
};

/// A value-speculated scalar (DESIGN.md §10): privatized per worker and
/// seeded each iteration with the predicted value. Every access is
/// value-watched; the validator checks observed writes against the
/// prediction table the runtime builds at invocation time (anchored at the
/// storage's live entry value, advanced by the trained stride).
struct ValuePrediction {
  const Value *Storage = nullptr;
  ValueClassKind Kind = ValueClassKind::Invariant;
  bool IsFloat = false;
  int64_t StrideI = 0; ///< Strided only.
  double StrideF = 0.0;
};

/// A promoted custom reduction (`reducible(var : fn)`): per-worker
/// zero-filled partials accumulated by profile-confirmed additive RMWs and
/// merged by *executing* the registered combiner in chunk order — the
/// combiner registry made runnable. Cold non-conforming accesses are
/// guard-watched (GuardWatchOf): one executing at run time is a
/// misspeculation.
struct SpecReduction {
  const Value *Storage = nullptr;
  const Function *Combiner = nullptr;
};

/// Executable schedule of one loop.
struct LoopSchedule {
  ScheduleKind Kind = ScheduleKind::Sequential;
  std::string Reason; ///< Why this kind (diagnostic; set for Sequential too).

  const Function *F = nullptr;
  unsigned Header = 0;
  unsigned Depth = 0;

  // Canonical iteration space.
  const Value *IVStorage = nullptr;
  long Init = 0, Step = 1, Trip = 0;
  const BasicBlock *BodyEntry = nullptr; ///< Header's in-loop successor.
  const BasicBlock *Exit = nullptr;      ///< Header's out-of-loop successor.
  std::set<unsigned> Blocks;             ///< Loop block indices (incl. nested).

  std::vector<PrivateVar> Privates;
  std::vector<ReductionVar> Reductions;
  long Chunk = 0; ///< DOALL chunk size; 0 = trip/(threads*4).

  // HELIX: SCC classification for the iteration-order gate.
  std::map<const Instruction *, unsigned> SCCOf;
  std::vector<bool> SCCIsSeq;

  // DSWP: pipeline stage per instruction, stages in topological order.
  std::map<const Instruction *, unsigned> StageOf;
  unsigned NumStages = 0;
  /// Program-order index per instruction (shadow-store tie-breaking; also
  /// filled for speculative DOALL/HELIX overlay merges).
  std::map<const Instruction *, unsigned> InstIndex;

  // --- Speculation (DESIGN.md §9) ---------------------------------------
  //
  // A speculative schedule is justified by the plan view only under the
  // assumption set below. The compiler lowers the set into a conflict-check
  // table: the union of assumption endpoints becomes the *watch set*
  // (instruction → dense watch index); the assumptions become watch-index
  // pairs the runtime validator checks against the watched accesses each
  // worker logged. On a detected violation the runtime discards all
  // speculative state and re-executes the loop sequentially.
  bool Speculative = false;
  std::vector<SpecAssumption> Assumptions;
  std::map<const Instruction *, unsigned> WatchOf;
  unsigned NumWatched = 0;
  /// Assumption id → (src watch, dst watch); the validator's pair table.
  std::vector<std::pair<unsigned, unsigned>> AssumedPairs;

  // --- Value & reduction speculation (DESIGN.md §10) --------------------
  //
  // A schedule may additionally carry per-value obligations: predicted
  // scalars (ValuePreds, accesses in ValueWatchOf logged with their
  // stored values) and promoted custom reductions (SpecReductions, their
  // cold accesses in GuardWatchOf). Only DOALL schedules carry them —
  // value speculation privatizes its storage per worker, which the gate /
  // pipeline models cannot express. Validation and rollback share the §9
  // machinery: one SpecValidator checks conflict pairs, value predictions,
  // and guards together at the join.
  std::vector<ValuePrediction> ValuePreds;
  std::vector<SpecReduction> SpecReductions;
  /// Access instruction → ValuePreds index (loads and stores of the
  /// value-speculated scalars).
  std::map<const Instruction *, unsigned> ValueWatchOf;
  /// Cold access instruction → guard ordinal; any logged execution is a
  /// misspeculation.
  std::map<const Instruction *, unsigned> GuardWatchOf;

  bool hasValueSpec() const {
    return !ValuePreds.empty() || !SpecReductions.empty();
  }

  /// A zero-obligation schedule carries nothing the runtime must watch,
  /// validate, or roll back: no conflict assumptions, no value
  /// predictions, no promoted reductions, no guards. Workers of such a
  /// schedule run with no shadow memory, no access log, and no watch
  /// tables installed, so the engine's fast dispatch loop
  /// (BCContext::canFastPath) engages. This predicate is the plan-level
  /// half of the fast-path contract documented in DESIGN.md §11.
  bool zeroObligation() const {
    return !Speculative && Assumptions.empty() && ValuePreds.empty() &&
           SpecReductions.empty() && GuardWatchOf.empty();
  }
};

/// Calibrated cost model for the per-loop grain pass (DESIGN.md §11). When
/// enabled, the plan compiler estimates each parallel schedule's
/// per-invocation runtime from static instruction counts and the constants
/// below, demotes schedules whose modeled speedup falls under MinSpeedup
/// ("below parallel grain"), and sizes DOALL chunks so each carries at
/// least MinChunkWork interpreted instructions.
///
/// All costs are in interpreted-instruction equivalents: microsecond
/// measurements from bench_micro divided by the fast dispatch loop's
/// measured ns/instruction (see DESIGN.md §11 for the derivation).
/// Disabled by default so plan-construction APIs and their tests keep
/// their historical, purely validity-driven schedules.
struct GrainConfig {
  bool Enabled = false;
  /// >0: force this DOALL chunk size everywhere and skip demotion
  /// entirely (the `--grain=N` escape hatch).
  long ForcedChunk = 0;
  /// Concurrent hardware capacity the model divides parallel work by
  /// (0 = assume the plan's thread count). Callers that want plans
  /// reflecting the actual machine pass min(threads, hw concurrency).
  unsigned Workers = 0;
  // -- calibrated constants (interpreted-instruction equivalents) --
  double SpawnCost = 900;     ///< Per DOALL chunk / HELIX worker task:
                              ///< context + frame clone + privatize + enqueue.
  double JoinCost = 1800;     ///< Per invocation: pool wait + merges.
  double GateCost = 80;       ///< HELIX: per iteration-order gate handoff.
  double TokenCost = 250;     ///< DSWP: per token send/receive per iteration.
  double MinSpeedup = 1.2;    ///< Demote below this modeled speedup.
  double MinChunkWork = 8192; ///< DOALL auto-chunk floor (instructions).
  long DefaultTrip = 16;      ///< Trip guess for non-constant nested loops.
};

/// Whole-module runtime plan under one abstraction.
struct RuntimePlan {
  AbstractionKind Abs = AbstractionKind::PSPDG;
  FeatureSet Features;
  unsigned Threads = 1;
  /// Keeps Loop/analysis object lifetimes for the schedules below.
  std::shared_ptr<ModuleAnalyses> MA;
  std::map<std::pair<const Function *, unsigned>, LoopSchedule> Loops;

  const LoopSchedule *scheduleFor(const Function *F, unsigned Header) const {
    auto It = Loops.find({F, Header});
    return It == Loops.end() ? nullptr : &It->second;
  }
};

/// Compiles the runtime plan for \p M under abstraction \p Kind (PDG, J&K,
/// or PS-PDG; OpenMP has no compiler plan view). Loops each abstraction may
/// re-plan mirror the critical-path methodology: PDG outermost loops, J&K
/// outermost + worksharing inner loops, PS-PDG every loop.
/// \p DepOracles configures the dependence-oracle stack backing the plan's
/// abstraction views (empty = full default sound stack; naming "spec" with
/// a profile enables speculative schedules; see DepOracle.h). A named
/// profile must outlive nothing — schedules copy their assumption sets.
/// \p Grain configures the cost-model grain pass (default: disabled, so
/// schedules are purely validity-driven as before).
/// \p Decisions (optional) receives one structured LoopDecision per planned
/// loop — the `--explain` evidence (obs/PlanDecision.h): candidate
/// verdicts, oracle-attributed blockers, assumptions, cost-model numbers,
/// and the grain outcome. Null costs nothing.
RuntimePlan buildRuntimePlan(const Module &M, AbstractionKind Kind,
                             unsigned Threads,
                             const FeatureSet &Features = FeatureSet(),
                             const DepOracleConfig &DepOracles = {},
                             const GrainConfig &Grain = {},
                             obs::PlanDecisionLog *Decisions = nullptr);

} // namespace psc

#endif // PSPDG_RUNTIME_SCHEDULE_H
