//===- ThreadPool.cpp -----------------------------------------*- C++ -*-===//

#include "runtime/ThreadPool.h"

#include <chrono>

using namespace psc;

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = 1;
  Workers.reserve(NumThreads);
  for (unsigned W = 0; W < NumThreads; ++W)
    Workers.push_back(std::make_unique<Worker>());
  Threads.reserve(NumThreads);
  for (unsigned W = 0; W < NumThreads; ++W)
    Threads.emplace_back([this, W] { workerLoop(W); });
}

ThreadPool::~ThreadPool() {
  wait();
  Stop.store(true);
  WakeCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  unsigned Q = NextQueue.fetch_add(1, std::memory_order_relaxed) %
               Workers.size();
  Pending.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Lock(Workers[Q]->Mu);
    Workers[Q]->Q.push_back(std::move(Task));
  }
  WakeCv.notify_all();
}

std::function<void()> ThreadPool::take(unsigned Self) {
  unsigned N = static_cast<unsigned>(Workers.size());
  // Own deque: LIFO.
  if (Self < N) {
    Worker &W = *Workers[Self];
    std::lock_guard<std::mutex> Lock(W.Mu);
    if (!W.Q.empty()) {
      auto Task = std::move(W.Q.back());
      W.Q.pop_back();
      return Task;
    }
  }
  // Steal: FIFO from the other workers.
  for (unsigned D = 0; D < N; ++D) {
    unsigned V = (Self + 1 + D) % N;
    Worker &W = *Workers[V];
    std::lock_guard<std::mutex> Lock(W.Mu);
    if (!W.Q.empty()) {
      auto Task = std::move(W.Q.front());
      W.Q.pop_front();
      return Task;
    }
  }
  return {};
}

void ThreadPool::workerLoop(unsigned Self) {
  while (!Stop.load(std::memory_order_relaxed)) {
    std::function<void()> Task = take(Self);
    if (Task) {
      Task();
      Pending.fetch_sub(1, std::memory_order_release);
      WakeCv.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> Lock(WakeMu);
    WakeCv.wait_for(Lock, std::chrono::milliseconds(1));
  }
}

void ThreadPool::wait() {
  // Lend this thread to the pool: steal with an out-of-range self id.
  while (Pending.load(std::memory_order_acquire) != 0) {
    std::function<void()> Task = take(static_cast<unsigned>(Workers.size()));
    if (Task) {
      Task();
      Pending.fetch_sub(1, std::memory_order_release);
      WakeCv.notify_all();
    } else {
      std::this_thread::yield();
    }
  }
}
