//===- ThreadPool.cpp -----------------------------------------*- C++ -*-===//

#include "runtime/ThreadPool.h"

using namespace psc;

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = 1;
  Workers.reserve(NumThreads);
  for (unsigned W = 0; W < NumThreads; ++W)
    Workers.push_back(std::make_unique<Worker>());
  // Worker threads spawn lazily on the first submit(): a plan whose loops
  // all stayed sequential never pays for thread creation or idle wakeups.
}

ThreadPool::~ThreadPool() {
  wait();
  Stop.store(true);
  {
    // Lock around the notify so a worker between its predicate check and
    // its wait cannot miss the stop signal.
    std::lock_guard<std::mutex> Lock(WakeMu);
  }
  WakeCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::ensureStarted() {
  // Two session handlers may race into the first submit() (the analysis
  // service shares one pool across connections); call_once makes exactly
  // one of them spawn, and its release ordering publishes Threads to the
  // losers before they enqueue.
  std::call_once(StartOnce, [this] {
    unsigned N = static_cast<unsigned>(Workers.size());
    Threads.reserve(N);
    for (unsigned W = 0; W < N; ++W)
      Threads.emplace_back([this, W] { workerLoop(W); });
  });
}

void ThreadPool::submit(std::function<void()> Task) {
  ensureStarted();
  unsigned Q = NextQueue.fetch_add(1, std::memory_order_relaxed) %
               Workers.size();
  Pending.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Lock(Workers[Q]->Mu);
    Workers[Q]->Q.push_back(std::move(Task));
  }
  {
    std::lock_guard<std::mutex> Lock(WakeMu);
    ++SubmitEpoch;
  }
  WakeCv.notify_all();
}

std::function<void()> ThreadPool::take(unsigned Self) {
  unsigned N = static_cast<unsigned>(Workers.size());
  // Own deque: LIFO.
  if (Self < N) {
    Worker &W = *Workers[Self];
    std::lock_guard<std::mutex> Lock(W.Mu);
    if (!W.Q.empty()) {
      auto Task = std::move(W.Q.back());
      W.Q.pop_back();
      return Task;
    }
  }
  // Steal: FIFO from the other workers.
  for (unsigned D = 0; D < N; ++D) {
    unsigned V = (Self + 1 + D) % N;
    Worker &W = *Workers[V];
    std::lock_guard<std::mutex> Lock(W.Mu);
    if (!W.Q.empty()) {
      auto Task = std::move(W.Q.front());
      W.Q.pop_front();
      return Task;
    }
  }
  return {};
}

void ThreadPool::workerLoop(unsigned Self) {
  while (!Stop.load(std::memory_order_relaxed)) {
    // Snapshot the submit epoch BEFORE scanning the deques: a submit that
    // lands after the scan bumps the epoch, so the wait predicate below
    // sees it and the worker rescans instead of sleeping through it.
    uint64_t Seen;
    {
      std::lock_guard<std::mutex> Lock(WakeMu);
      Seen = SubmitEpoch;
    }
    std::function<void()> Task = take(Self);
    if (Task) {
      Task();
      Pending.fetch_sub(1, std::memory_order_release);
      continue;
    }
    // Idle: block until new work is submitted (epoch moves) or shutdown.
    // No timeout poll — an idle pool must not preempt the master thread,
    // which on small machines shares its core with the workers.
    std::unique_lock<std::mutex> Lock(WakeMu);
    WakeCv.wait(Lock, [&] {
      return Stop.load(std::memory_order_relaxed) || SubmitEpoch != Seen;
    });
  }
}

void ThreadPool::wait() {
  // Lend this thread to the pool: steal with an out-of-range self id.
  while (Pending.load(std::memory_order_acquire) != 0) {
    std::function<void()> Task = take(static_cast<unsigned>(Workers.size()));
    if (Task) {
      Task();
      Pending.fetch_sub(1, std::memory_order_release);
    } else {
      std::this_thread::yield();
    }
  }
}
