//===- PDG.cpp ------------------------------------------------*- C++ -*-===//

#include "pdg/PDG.h"

#include <sstream>

using namespace psc;

PDG::PDG(const FunctionAnalysis &FA, DepOracleStack &Stack) : FA(FA) {
  Edges = buildDepEdges(Stack);
  Out.resize(numNodes());
  for (unsigned E = 0; E < Edges.size(); ++E)
    Out[FA.indexOf(Edges[E].Src)].push_back(E);
}

PDG::PDG(const FunctionAnalysis &FA, const DependenceInfo &DI) : FA(FA) {
  Edges = DI.edges();
  Out.resize(numNodes());
  for (unsigned E = 0; E < Edges.size(); ++E)
    Out[FA.indexOf(Edges[E].Src)].push_back(E);
}

std::vector<const DepEdge *> PDG::edgesWithin(const Loop &L) const {
  std::vector<const DepEdge *> Result;
  for (const DepEdge &E : Edges) {
    unsigned SB = E.Src->getParent()->getIndex();
    unsigned DB = E.Dst->getParent()->getIndex();
    if (L.contains(SB) && L.contains(DB))
      Result.push_back(&E);
  }
  return Result;
}

namespace {

const char *kindLabel(DepKind K) {
  switch (K) {
  case DepKind::Register:
    return "reg";
  case DepKind::MemoryRAW:
    return "RAW";
  case DepKind::MemoryWAR:
    return "WAR";
  case DepKind::MemoryWAW:
    return "WAW";
  case DepKind::Control:
    return "ctrl";
  }
  return "?";
}

} // namespace

std::string PDG::toDot(const Loop *Only) const {
  std::ostringstream OS;
  OS << "digraph PDG {\n  node [shape=box,fontsize=9];\n";
  auto InScope = [&](const Instruction *I) {
    return !Only || Only->contains(I->getParent()->getIndex());
  };
  for (unsigned N = 0; N < numNodes(); ++N) {
    Instruction *I = node(N);
    if (!InScope(I))
      continue;
    OS << "  n" << N << " [label=\"" << N << ": " << I->getOpcodeName()
       << "\"];\n";
  }
  for (const DepEdge &E : Edges) {
    if (!InScope(E.Src) || !InScope(E.Dst))
      continue;
    OS << "  n" << FA.indexOf(E.Src) << " -> n" << FA.indexOf(E.Dst)
       << " [label=\"" << kindLabel(E.Kind)
       << (E.CarriedAtHeaders.empty() ? "" : " LC") << "\""
       << (E.Kind == DepKind::Control ? ",style=dashed" : "") << "];\n";
  }
  OS << "}\n";
  return OS.str();
}
