//===- PDG.h - Classic Program Dependence Graph ------------------*- C++ -*-===//
///
/// \file
/// The Ferrante/Ottenstein/Warren PDG over one function: one node per
/// instruction, edges for data (register), memory, and control dependences,
/// with per-loop carried annotations. This is the baseline abstraction the
/// paper's PS-PDG is compared against (paper §6.2/6.3, "PDG" and "J&K"
/// series) — it sees no parallel semantics at all.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_PDG_PDG_H
#define PSPDG_PDG_PDG_H

#include "analysis/DependenceAnalysis.h"
#include "analysis/FunctionAnalysis.h"

#include <string>
#include <vector>

namespace psc {

/// Classic PDG: instruction nodes + dependence edges.
class PDG {
public:
  /// Builds the edge set through the shared oracle stack (repeated builds
  /// are served by its query cache).
  PDG(const FunctionAnalysis &FA, DepOracleStack &Stack);
  /// Compatibility: consume an already-materialized edge set.
  PDG(const FunctionAnalysis &FA, const DependenceInfo &DI);

  const FunctionAnalysis &functionAnalysis() const { return FA; }

  unsigned numNodes() const {
    return static_cast<unsigned>(FA.instructions().size());
  }
  Instruction *node(unsigned Idx) const { return FA.instructions()[Idx]; }

  const std::vector<DepEdge> &edges() const { return Edges; }

  /// Outgoing edge indices of a node.
  const std::vector<unsigned> &outEdges(unsigned Node) const {
    return Out[Node];
  }

  /// Edges whose endpoints are both inside \p L.
  std::vector<const DepEdge *> edgesWithin(const Loop &L) const;

  /// DOT rendering (optionally restricted to a loop).
  std::string toDot(const Loop *Only = nullptr) const;

private:
  const FunctionAnalysis &FA;
  std::vector<DepEdge> Edges;
  std::vector<std::vector<unsigned>> Out;
};

} // namespace psc

#endif // PSPDG_PDG_PDG_H
