//===- PlanEnumerator.cpp -------------------------------------*- C++ -*-===//

#include "parallel/PlanEnumerator.h"

#include "profiling/DepProfile.h"
#include "pspdg/PSPDGBuilder.h"

#include <algorithm>

using namespace psc;

namespace {

bool loopQualifies(const CoverageMap *Coverage, const std::string &Fn,
                   unsigned Header, double Threshold) {
  if (!Coverage)
    return true;
  auto It = Coverage->find({Fn, Header});
  return It != Coverage->end() && It->second >= Threshold;
}

uint64_t doallOptions(const EnumeratorConfig &C) {
  return static_cast<uint64_t>(C.Cores) * C.ChunkSizes;
}

uint64_t helixOptions(const EnumeratorConfig &C, unsigned NumSeqSCCs) {
  // One option per (number of sequential segments, core count): a
  // sequential segment is a slice containing at least one sequential SCC,
  // so the segment count ranges over 1..NumSeqSCCs.
  return static_cast<uint64_t>(std::max(1u, NumSeqSCCs)) * C.Cores;
}

uint64_t dswpOptions(const EnumeratorConfig &C, unsigned NumSCCs) {
  // One option per pipeline stage count, 2..min(#SCCs, cores).
  unsigned MaxStages = std::min(NumSCCs, C.Cores);
  return MaxStages >= 2 ? MaxStages - 1 : 0;
}

} // namespace

double psc::speculativePlanCost(unsigned NumObligations, uint64_t Attempts,
                                uint64_t Misspecs, const SpecCostModel &M) {
  double Rate =
      Attempts == 0 ? 0.0
                    : static_cast<double>(Misspecs) / static_cast<double>(
                                                          Attempts);
  return M.AssumptionWeight * NumObligations + M.MisspecPenalty * Rate;
}

bool psc::acceptSpeculativePlan(unsigned NumObligations, uint64_t Attempts,
                                uint64_t Misspecs, const SpecCostModel &M) {
  return speculativePlanCost(NumObligations, Attempts, Misspecs, M) <=
         M.AcceptThreshold;
}

bool psc::speculationAccepted(const DepProfile *Profile,
                              const std::string &Fn, unsigned Header,
                              unsigned NumObligations, double *CostOut,
                              const SpecCostModel &M) {
  uint64_t Attempts = 0, Misspecs = 0;
  if (Profile)
    Profile->specHistory(Fn, Header, Attempts, Misspecs);
  if (CostOut)
    *CostOut = speculativePlanCost(NumObligations, Attempts, Misspecs, M);
  return acceptSpeculativePlan(NumObligations, Attempts, Misspecs, M);
}

OptionCount psc::enumerateOptions(const Module &M, AbstractionKind Kind,
                                  const EnumeratorConfig &Config,
                                  const CoverageMap *Coverage,
                                  const FeatureSet &Features,
                                  const DepOracleConfig &DepOracles) {
  OptionCount Out;

  for (const auto &FPtr : M.functions()) {
    const Function &F = *FPtr;
    if (F.isDeclaration())
      continue;

    FunctionAnalysis FA(F);
    if (FA.loopInfo().loops().empty())
      continue;

    if (Kind == AbstractionKind::OpenMP) {
      // Programmer plan only: each worksharing loop exposes the
      // environment-variable surface (threads × chunk sizes). One
      // exception outranks the annotation: a must-carried dependence
      // (a definite constant-distance conflict the oracle *proved* to
      // manifest) — a declaration resolves uncertainty, it cannot erase
      // a proof, so even the programmer plan refuses DOALL there.
      std::unique_ptr<DepOracleStack> LazyStack;
      std::vector<DepEdge> LazyEdges;
      auto MustCarriedAt = [&](unsigned H) {
        if (!LazyStack) {
          LazyStack = std::make_unique<DepOracleStack>(FA);
          LazyEdges = buildDepEdges(*LazyStack);
        }
        for (const DepEdge &E : LazyEdges)
          if (E.isMustCarriedAt(H))
            return true;
        return false;
      };
      for (const Loop *L : FA.loopInfo().loops()) {
        if (!loopQualifies(Coverage, F.getName(), L->getHeader(),
                           Config.CoverageThreshold))
          continue;
        BasicBlock *Header = F.getBlock(L->getHeader());
        bool Annotated = false;
        for (const Directive *D :
             M.getParallelInfo().directivesForLoop(Header))
          if (D->Kind == DirectiveKind::ParallelFor ||
              D->Kind == DirectiveKind::For)
            Annotated = true;
        if (!Annotated)
          continue;
        LoopOptions LO;
        LO.FunctionName = F.getName();
        LO.HeaderBlock = L->getHeader();
        LO.Depth = L->getDepth();
        LO.DOALL = !MustCarriedAt(L->getHeader());
        if (LO.DOALL) {
          LO.Options = doallOptions(Config);
          ++Out.DOALLLoops;
        }
        Out.Total += LO.Options;
        ++Out.LoopsConsidered;
        Out.PerLoop.push_back(std::move(LO));
      }
      continue;
    }

    // One oracle stack per function; materialize the edge set once and
    // feed it to both consumers (the PS-PDG build and the view).
    DepOracleStack Stack(FA, DepOracles);
    std::vector<DepEdge> DepEdges = buildDepEdges(Stack);
    std::unique_ptr<PSPDG> G;
    if (Kind == AbstractionKind::PSPDG)
      G = buildPSPDGFromEdges(FA, DepEdges, Features);
    AbstractionView View(Kind, FA, std::move(DepEdges), G.get());

    for (const Loop *L : FA.loopInfo().loops()) {
      if (!loopQualifies(Coverage, F.getName(), L->getHeader(),
                         Config.CoverageThreshold))
        continue;

      LoopPlanView PV = View.viewFor(*L);

      // Speculation-aware selection: a speculative view is costed by its
      // obligation count and the profile's historical misspeculation rate;
      // a rejected view counts its options from the sound alternative.
      unsigned Obligations = static_cast<unsigned>(PV.Assumptions.size() +
                                                   PV.ValueAssumptions.size());
      double SpecCost = 0.0;
      bool SpecRejected = false;
      if (Obligations &&
          !speculationAccepted(DepOracles.SpecProfile, F.getName(),
                               L->getHeader(), Obligations, &SpecCost)) {
        SpecRejected = true;
        PV = soundAlternative(PV);
      }
      LoopSCCDAG DAG(PV);

      LoopOptions LO;
      LO.FunctionName = F.getName();
      LO.HeaderBlock = L->getHeader();
      LO.Depth = L->getDepth();
      LO.NumSCCs = DAG.numSCCs();
      LO.NumSeqSCCs = DAG.numSequentialSCCs();
      LO.DOALL = DAG.allParallel() && PV.TripCountable;
      LO.SpecAssumptions = Obligations;
      LO.SpecCost = SpecCost;
      LO.SpecRejected = SpecRejected;

      if (LO.DOALL) {
        LO.Options = doallOptions(Config);
        ++Out.DOALLLoops;
      } else {
        LO.Options = helixOptions(Config, LO.NumSeqSCCs) +
                     dswpOptions(Config, LO.NumSCCs);
      }
      Out.Total += LO.Options;
      ++Out.LoopsConsidered;
      Out.PerLoop.push_back(std::move(LO));
    }
  }
  return Out;
}
