//===- PlanEnumerator.h - Counting parallelization options -------*- C++ -*-===//
///
/// \file
/// Reproduces the paper's §6.2 experiment (Fig. 13): enumerate the
/// parallelization options an automatic-parallelizing compiler considers
/// per loop, for each abstraction, on a 56-core machine:
///
///   * DOALL-able loops: Cores(56) × ChunkSizes(8) options; a DOALL loop is
///     considered only as DOALL;
///   * non-DOALL loops: HELIX options = (number of possible sequential
///     segments = #sequential SCCs) × 56 cores; DSWP options = number of
///     possible pipeline stage counts (2 .. min(#SCCs, 56));
///   * OpenMP (programmer plan): 56 × 8 schedule/thread-count choices per
///     programmer-parallelized loop — the environment-variable surface.
///
/// Loops qualify when their runtime coverage is at least 1% (coverage map
/// from the emulator's profile; defaults to "all loops qualify").
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_PARALLEL_PLANENUMERATOR_H
#define PSPDG_PARALLEL_PLANENUMERATOR_H

#include "parallel/AbstractionView.h"
#include "pspdg/Features.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace psc {

/// Enumeration constants from the paper's methodology.
struct EnumeratorConfig {
  unsigned Cores = 56;
  unsigned ChunkSizes = 8;
  double CoverageThreshold = 0.01;
};

/// Speculation-aware plan selection (ROADMAP "speculation-aware plan
/// *selection*"): a speculative plan is no longer chosen on structure
/// alone — it pays for its assumption count (validation overhead: every
/// assumption endpoint is watched and logged) and for its *historical
/// misspeculation rate* (rollback cost: a blown invocation re-executes
/// sequentially and disables the schedule for the run). History comes
/// from the profile's per-loop spec_attempts / spec_misspecs counters,
/// fed back by `pscc --spec-feedback` after parallel runs.
/// The constants are calibrated from bench_micro's runtime records
/// (BENCH_micro.json), in interpreted-instruction equivalents per loop
/// iteration — the same unit discipline as GrainConfig (Schedule.h):
///
///   * AssumptionWeight = 8: one obligation watches its two endpoint
///     accesses; every watched access pays a log append
///     (`spec_watch_access`, ~1.1 instr-equiv) plus the validator's
///     per-record fold and conflict-check share (`spec_validate_pair`,
///     ~2.7 instr-equiv) — 2 x ~3.8 ~= 7.7, rounded up to 8.
///   * MisspecPenalty = 512: at rate 1.0 every invocation rolls back —
///     the parallel attempt is discarded and the loop re-executes
///     sequentially, so the waste is a whole invocation, not a
///     per-iteration constant. Charged as the canonical calibration trip
///     (64 iterations) times the per-obligation cost: 64 x 8 = 512.
///     One misspeculation in <= 2 attempts thus rejects even an
///     obligation-free plan.
///   * AcceptThreshold = 256: the per-iteration validation budget. The
///     benchmarked kernels' hot bodies run a few hundred interpreted
///     instructions per iteration, so 256 means validation may at worst
///     add about one body's worth of work — which an 8-way DOALL still
///     amortizes below the parallel win. On a cold profile this admits
///     up to 32 simultaneous obligations (the densest organic plan, RX's
///     histogram loop, carries 16).
struct SpecCostModel {
  double AssumptionWeight = 8.0;   ///< Cost per runtime obligation.
  double MisspecPenalty = 512.0;   ///< Cost at misspeculation rate 1.0.
  double AcceptThreshold = 256.0;  ///< Plans costlier than this fall back
                                   ///< to the sound alternative.
};

/// Cost of one speculative plan: obligations weighted, plus the historical
/// misspeculation rate (misspecs / attempts; 0 with no history) scaled by
/// the rollback penalty.
double speculativePlanCost(unsigned NumObligations, uint64_t Attempts,
                           uint64_t Misspecs, const SpecCostModel &M = {});

/// Selection predicate: cost under the threshold. With default knobs a
/// fresh profile (no history) accepts up to 32 obligations; a single
/// recorded misspeculation in one or two attempts rejects speculation
/// for the loop until clean runs dilute the rate.
bool acceptSpeculativePlan(unsigned NumObligations, uint64_t Attempts,
                           uint64_t Misspecs, const SpecCostModel &M = {});

class DepProfile;

/// The one shared selection decision both surfaces consult — the plan
/// compiler (with schedule-level obligations) and the enumerator (with
/// view-level obligations): looks up (Fn, Header)'s speculation history in
/// \p Profile (null = no history) and accepts/rejects \p NumObligations
/// under the model. \p CostOut (optional) receives the computed cost.
bool speculationAccepted(const DepProfile *Profile, const std::string &Fn,
                         unsigned Header, unsigned NumObligations,
                         double *CostOut = nullptr,
                         const SpecCostModel &M = {});

/// Loop runtime coverage: header block → fraction of dynamic instructions.
/// Keys are (function name, header block index).
using CoverageMap = std::map<std::pair<std::string, unsigned>, double>;

/// Per-loop enumeration result. Plain data only: the analyses that
/// produced it are gone by the time the caller sees this.
struct LoopOptions {
  std::string FunctionName;
  unsigned HeaderBlock = 0;
  unsigned Depth = 0;
  bool DOALL = false;
  unsigned NumSCCs = 0;
  unsigned NumSeqSCCs = 0;
  uint64_t Options = 0;
  /// Speculative assumptions the loop's view relies on (0 = sound): any
  /// plan counted under them must be runtime-validated. Counts memory
  /// assumptions plus per-value obligations (ValueAssumptions).
  unsigned SpecAssumptions = 0;
  /// Cost-model verdict for the speculative view (0.0 for sound loops).
  double SpecCost = 0.0;
  /// True when the cost model rejected speculation for this loop: the
  /// options above were counted from the sound alternative view.
  bool SpecRejected = false;
};

/// Totals for one function (or one benchmark) under one abstraction.
struct OptionCount {
  uint64_t Total = 0;
  unsigned LoopsConsidered = 0;
  unsigned DOALLLoops = 0;
  std::vector<LoopOptions> PerLoop;
};

/// Enumerates options for every qualifying loop of \p M under abstraction
/// \p Kind. For PSPDG the FeatureSet selects the (possibly ablated) PS-PDG.
/// \p DepOracles configures the dependence-oracle stack (empty = full
/// default sound stack; see DepOracle.h) so oracle ablations — and
/// profile-backed speculation — reach the enumeration too.
OptionCount enumerateOptions(const Module &M, AbstractionKind Kind,
                             const EnumeratorConfig &Config = {},
                             const CoverageMap *Coverage = nullptr,
                             const FeatureSet &Features = FeatureSet(),
                             const DepOracleConfig &DepOracles = {});

} // namespace psc

#endif // PSPDG_PARALLEL_PLANENUMERATOR_H
