//===- RegionMap.h - Instruction → directive-region lookup ------*- C++ -*-===//
///
/// \file
/// Maps every instruction to the innermost directive region (critical /
/// atomic / single / master / ordered / parallel) containing it, derived
/// from the __psc_region_begin/end marker calls. Shared by the abstraction
/// views and the critical-path evaluator.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_PARALLEL_REGIONMAP_H
#define PSPDG_PARALLEL_REGIONMAP_H

#include "analysis/FunctionAnalysis.h"
#include "ir/ParallelInfo.h"

#include <map>

namespace psc {

/// Per-function region membership.
class RegionMap {
public:
  explicit RegionMap(const FunctionAnalysis &FA);

  /// Innermost directive region containing \p I, or null.
  const Directive *regionOf(const Instruction *I) const {
    auto It = Map.find(I);
    return It == Map.end() ? nullptr : It->second;
  }

  /// Innermost region of kind \p K containing \p I (walks the nesting
  /// chain), or null.
  const Directive *enclosing(const Instruction *I, DirectiveKind K) const;

  /// True if \p I sits inside any critical/atomic region.
  bool inMutualExclusionRegion(const Instruction *I) const {
    return enclosing(I, DirectiveKind::Critical) ||
           enclosing(I, DirectiveKind::Atomic);
  }

  bool inOrderedRegion(const Instruction *I) const {
    return enclosing(I, DirectiveKind::Ordered) != nullptr;
  }

private:
  std::map<const Instruction *, const Directive *> Map;
  std::map<const Directive *, const Directive *> ParentRegion;
};

} // namespace psc

#endif // PSPDG_PARALLEL_REGIONMAP_H
