//===- PlanLines.cpp ------------------------------------------*- C++ -*-===//

#include "parallel/PlanLines.h"

#include <cstdio>

using namespace psc;

LoopPlanSummary psc::summarizeLoopPlan(const FunctionAnalysis &FA,
                                       const Loop &L, const LoopPlanView &PV,
                                       const LoopSCCDAG &DAG) {
  LoopPlanSummary S;
  S.Fn = FA.function().getName();
  S.Header = FA.function().getBlock(L.getHeader())->getName();
  S.Depth = L.getDepth();
  S.NumSCCs = DAG.numSCCs();
  S.NumSeqSCCs = DAG.numSequentialSCCs();
  S.DOALL = DAG.allParallel() && PV.TripCountable;
  S.Lock = PV.NumOrderlessConflicts != 0;
  return S;
}

std::string psc::renderPlanLine(const LoopPlanSummary &S) {
  char Line[256];
  std::snprintf(Line, sizeof(Line), "@%s %-16s depth=%u SCCs=%u seq=%u %s%s\n",
                S.Fn.c_str(), S.Header.c_str(), S.Depth, S.NumSCCs,
                S.NumSeqSCCs, S.DOALL ? "DOALL" : "-",
                S.Lock ? " (lock)" : "");
  return Line;
}

std::vector<LoopPlanSummary> psc::summarizePlans(const FunctionAnalysis &FA,
                                                 const AbstractionView &View) {
  std::vector<LoopPlanSummary> Summaries;
  for (const Loop *L : FA.loopInfo().loops()) {
    LoopPlanView PV = View.viewFor(*L);
    LoopSCCDAG DAG(PV);
    Summaries.push_back(summarizeLoopPlan(FA, *L, PV, DAG));
  }
  return Summaries;
}

std::string psc::renderPlanLines(const FunctionAnalysis &FA,
                                 const AbstractionView &View) {
  std::string Lines;
  for (const LoopPlanSummary &S : summarizePlans(FA, View))
    Lines += renderPlanLine(S);
  return Lines;
}
