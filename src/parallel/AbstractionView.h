//===- AbstractionView.h - PDG / J&K / PS-PDG planner inputs -----*- C++ -*-===//
///
/// \file
/// Produces the per-loop dependence view (LoopPlanView) under each of the
/// paper's four abstractions (§6.2):
///
///   * OpenMP  — no compiler view; only the programmer's plan exists.
///   * PDG     — the classic PDG: all dependences, minus what sequential
///     compiler analysis removes (canonical-IV updates for countable loops,
///     iteration-private scalar temporaries).
///   * J&K     — PDG + worksharing-loop-improved dependence analysis
///     (Jensen & Karlsson, TACO'17): carried dependences at an annotated
///     loop are dropped for plain shared accesses and for scalar
///     private/reduction clauses, but critical/atomic/ordered content,
///     threadprivate arrays, and custom reductions stay conservative.
///   * PS-PDG  — the PS-PDG's directed edges (already feature-filtered by
///     the builder); undirected (orderless) edges do not serialize and are
///     only counted as lock requirements.
///
/// All views share the same compiler-analysis removals, so differences
/// between them measure exactly what each abstraction expresses.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_PARALLEL_ABSTRACTIONVIEW_H
#define PSPDG_PARALLEL_ABSTRACTIONVIEW_H

#include "analysis/DependenceAnalysis.h"
#include "parallel/LoopSCCDAG.h"
#include "parallel/RegionMap.h"
#include "pspdg/PSPDG.h"

#include <memory>

namespace psc {

/// The four abstractions compared in the paper's evaluation.
enum class AbstractionKind { OpenMP, PDG, JK, PSPDG };

const char *abstractionName(AbstractionKind K);

/// Builds LoopPlanViews for one function under one abstraction.
class AbstractionView {
public:
  /// \p G is required for AbstractionKind::PSPDG (it may be an ablated
  /// PS-PDG) and ignored otherwise. Issues the dependence queries through
  /// the shared oracle stack (repeated builds are served by its cache).
  AbstractionView(AbstractionKind Kind, const FunctionAnalysis &FA,
                  DepOracleStack &Stack, const PSPDG *G = nullptr);

  /// Compatibility: consume an already-materialized edge set.
  AbstractionView(AbstractionKind Kind, const FunctionAnalysis &FA,
                  const DependenceInfo &DI, const PSPDG *G = nullptr);

  /// Core constructor: an explicit edge set (used by the differential
  /// tests to feed reference edges through the same view logic).
  AbstractionView(AbstractionKind Kind, const FunctionAnalysis &FA,
                  std::vector<DepEdge> Edges, const PSPDG *G = nullptr);

  AbstractionKind kind() const { return Kind; }

  /// The planner input for loop \p L.
  LoopPlanView viewFor(const Loop &L) const;

private:
  bool keepCarried(const DepEdge &E, const Loop &L,
                   const std::set<const Value *> &PrivateScalars) const;
  bool jkRemovable(const DepEdge &E, const Loop &L) const;

  const Directive *worksharing(const Loop &L) const;

  AbstractionKind Kind;
  const FunctionAnalysis &FA;
  std::vector<DepEdge> Edges;
  const PSPDG *G;
  RegionMap Regions;
};

/// The sound counterpart of a (possibly speculative) plan view: every
/// assumption is re-materialized as the carried edges the view would have
/// kept without speculation, and the assumption sets are cleared. Used by
/// speculation-aware plan selection (PlanEnumerator.h): when the cost
/// model rejects a speculative plan, the loop is re-planned from this
/// view — falling back to whatever the sound stack justifies.
LoopPlanView soundAlternative(const LoopPlanView &PV);

} // namespace psc

#endif // PSPDG_PARALLEL_ABSTRACTIONVIEW_H
