//===- RegionMap.cpp ------------------------------------------*- C++ -*-===//

#include "parallel/RegionMap.h"

#include "ir/Module.h"

#include <vector>

using namespace psc;

RegionMap::RegionMap(const FunctionAnalysis &FA) {
  const ParallelInfo &PI = FA.function().getParent()->getParallelInfo();
  std::vector<const Directive *> Stack;
  for (Instruction *I : FA.instructions()) {
    if (const auto *CI = dyn_cast<CallInst>(I)) {
      const std::string &Name = CI->getCallee()->getName();
      if (Name == intrinsics::RegionBegin) {
        auto *IdC = cast<ConstantInt>(CI->getArg(0));
        const Directive *D =
            PI.getDirective(static_cast<unsigned>(IdC->getValue()));
        if (D) {
          ParentRegion[D] = Stack.empty() ? nullptr : Stack.back();
          Stack.push_back(D);
        }
        continue;
      }
      if (Name == intrinsics::RegionEnd) {
        if (!Stack.empty())
          Stack.pop_back();
        continue;
      }
    }
    if (!Stack.empty())
      Map[I] = Stack.back();
  }
}

const Directive *RegionMap::enclosing(const Instruction *I,
                                      DirectiveKind K) const {
  for (const Directive *D = regionOf(I); D;) {
    if (D->Kind == K)
      return D;
    auto It = ParentRegion.find(D);
    D = It == ParentRegion.end() ? nullptr : It->second;
  }
  return nullptr;
}
