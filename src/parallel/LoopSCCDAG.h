//===- LoopSCCDAG.h - SCC decomposition of a loop's dependences --*- C++ -*-===//
///
/// \file
/// The NOELLE-style decomposition the planners consume (paper §6.1): the
/// instructions of one loop, the dependence edges an abstraction kept for
/// it, the strongly-connected components of that graph, and the
/// sequential/parallel classification of each component (sequential = the
/// component contains a loop-carried edge, so its instances must serialize
/// across iterations).
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_PARALLEL_LOOPSCCDAG_H
#define PSPDG_PARALLEL_LOOPSCCDAG_H

#include "analysis/DepOracle.h"
#include "analysis/FunctionAnalysis.h"

#include <vector>

namespace psc {

/// One dependence edge between loop instructions (indices into the loop's
/// instruction list).
struct LoopDepEdge {
  unsigned Src = 0;
  unsigned Dst = 0;
  bool CarriedAtLoop = false;
  /// Attribution of a carried edge for the plan-decision log: the name of
  /// the oracle whose verdict kept the dependence at this loop (a static
  /// string; null when unattributed, e.g. register/IV chains), and
  /// whether the verdict was a MustDep proof rather than a conservative
  /// MayDep.
  const char *Oracle = nullptr;
  bool Must = false;
};

/// The per-loop dependence view an abstraction exposes to the planner.
struct LoopPlanView {
  const Loop *L = nullptr;
  std::vector<Instruction *> Insts; ///< Non-marker instructions of L.
  std::vector<LoopDepEdge> Edges;
  long TripCount = -1;        ///< Static trip count, -1 if unknown.
  bool TripCountable = false; ///< Canonical counted loop.
  bool HasWorksharingDirective = false;
  /// Number of orderless mutual-exclusion conflicts (locks) the plan must
  /// realize (PS-PDG undirected edges touching this loop).
  unsigned NumOrderlessConflicts = 0;

  /// Speculative assumptions this view relies on: carried dependences the
  /// view WOULD have kept, removed only because the spec oracle's profile
  /// never saw them manifest. A plan built from this view must carry the
  /// set into runtime validation (empty for sound views). Ids are ordinals
  /// within this loop's set.
  std::vector<SpecAssumption> Assumptions;

  /// Value assumptions (ValueSpec.h): carried dependences removed because
  /// the training profile predicts the storage's value behavior or
  /// licenses a combiner-merged reduction. One entry per storage; the plan
  /// compiler resolves each into a prediction-table entry or a promoted
  /// reduction, all runtime-validated (empty for sound views).
  std::vector<ValueAssumption> ValueAssumptions;
};

/// SCC decomposition of a LoopPlanView.
class LoopSCCDAG {
public:
  explicit LoopSCCDAG(const LoopPlanView &View);

  unsigned numSCCs() const { return static_cast<unsigned>(SeqFlag.size()); }
  unsigned numSequentialSCCs() const { return NumSeq; }
  bool isSequential(unsigned SCC) const { return SeqFlag[SCC]; }

  /// SCC id of a loop instruction (by index into View.Insts).
  unsigned sccOf(unsigned InstIdx) const { return ComponentOf[InstIdx]; }

  const std::vector<std::vector<unsigned>> &components() const {
    return Components;
  }

  /// True when no sequential SCC exists (every carried dependence was
  /// removed by the abstraction) — the DOALL precondition.
  bool allParallel() const { return NumSeq == 0; }

private:
  std::vector<std::vector<unsigned>> Components;
  std::vector<unsigned> ComponentOf;
  std::vector<bool> SeqFlag;
  unsigned NumSeq = 0;
};

} // namespace psc

#endif // PSPDG_PARALLEL_LOOPSCCDAG_H
