//===- LoopSCCDAG.cpp -----------------------------------------*- C++ -*-===//

#include "parallel/LoopSCCDAG.h"

#include "support/SCCIterator.h"

using namespace psc;

LoopSCCDAG::LoopSCCDAG(const LoopPlanView &View) {
  unsigned N = static_cast<unsigned>(View.Insts.size());
  std::vector<std::vector<unsigned>> Succs(N);
  for (const LoopDepEdge &E : View.Edges)
    Succs[E.Src].push_back(E.Dst);

  SCCResult R = computeSCCs(N, [&](unsigned Node) -> const std::vector<unsigned> & {
    return Succs[Node];
  });

  Components = std::move(R.Components);
  ComponentOf = std::move(R.ComponentOf);
  SeqFlag.assign(Components.size(), false);

  // Sequential SCC = contains a carried edge internal to the component
  // (including carried self-edges).
  for (const LoopDepEdge &E : View.Edges) {
    if (!E.CarriedAtLoop)
      continue;
    if (ComponentOf[E.Src] == ComponentOf[E.Dst])
      SeqFlag[ComponentOf[E.Src]] = true;
  }
  for (bool S : SeqFlag)
    if (S)
      ++NumSeq;
}
