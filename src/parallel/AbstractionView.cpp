//===- AbstractionView.cpp ------------------------------------*- C++ -*-===//

#include "parallel/AbstractionView.h"

#include "analysis/MemoryModel.h"
#include "analysis/Privatization.h"
#include "ir/Module.h"

#include <map>

using namespace psc;

const char *psc::abstractionName(AbstractionKind K) {
  switch (K) {
  case AbstractionKind::OpenMP:
    return "OpenMP";
  case AbstractionKind::PDG:
    return "PDG";
  case AbstractionKind::JK:
    return "J&K";
  case AbstractionKind::PSPDG:
    return "PS-PDG";
  }
  return "?";
}

AbstractionView::AbstractionView(AbstractionKind Kind,
                                 const FunctionAnalysis &FA,
                                 std::vector<DepEdge> Edges, const PSPDG *G)
    : Kind(Kind), FA(FA), Edges(std::move(Edges)), G(G), Regions(FA) {
  assert((Kind != AbstractionKind::PSPDG || G) &&
         "PS-PDG view requires a built PS-PDG");
}

AbstractionView::AbstractionView(AbstractionKind Kind,
                                 const FunctionAnalysis &FA,
                                 DepOracleStack &Stack, const PSPDG *G)
    : AbstractionView(Kind, FA, buildDepEdges(Stack), G) {}

AbstractionView::AbstractionView(AbstractionKind Kind,
                                 const FunctionAnalysis &FA,
                                 const DependenceInfo &DI, const PSPDG *G)
    : AbstractionView(Kind, FA, DI.edges(), G) {}

const Directive *AbstractionView::worksharing(const Loop &L) const {
  const Module *M = FA.function().getParent();
  BasicBlock *Header = FA.function().getBlock(L.getHeader());
  for (const Directive *D : M->getParallelInfo().directivesForLoop(Header))
    if (D->Kind == DirectiveKind::ParallelFor || D->Kind == DirectiveKind::For)
      return D;
  return nullptr;
}

bool AbstractionView::jkRemovable(const DepEdge &E, const Loop &L) const {
  const Directive *D = worksharing(L);
  if (!D || !E.isMemory() || E.IsIO)
    return false;
  // A must-carried level is a proof the conflict manifests (definite
  // constant-distance recurrence): no worksharing declaration can refine
  // it away, under any abstraction.
  if (E.isMustCarriedAt(L.getHeader()))
    return false;
  // Conservative content: mutual-exclusion and ordered regions keep their
  // dependences (J&K has no representation for orderless atomicity).
  if (Regions.inMutualExclusionRegion(E.Src) ||
      Regions.inMutualExclusionRegion(E.Dst) ||
      Regions.inOrderedRegion(E.Src) || Regions.inOrderedRegion(E.Dst))
    return false;

  const Value *Obj = E.MemObject;
  if (!Obj)
    return false; // opaque conflicts stay

  // Custom (application-specific) reductions are beyond the J&K model: the
  // worksharing declaration alone cannot justify reordering them.
  for (const ReductionClause &R : D->Reductions)
    if (R.Var.Storage == Obj && R.Op == ReduceOp::Custom)
      return false;

  // threadprivate objects are a data-property semantics (per-thread
  // storage), not iteration independence: outside the J&K model, so the
  // dependence stays.
  const Module *M = FA.function().getParent();
  if (M->getParallelInfo().isThreadPrivate(Obj))
    return false;

  // Everything else at the annotated loop is removable: J&K use the
  // worksharing declaration (including its standard data clauses) to
  // refine the dependence analysis of that loop — but only of that loop;
  // non-annotated loops, orderless critical sections, threadprivate
  // buffers, and data selectors remain out of reach (paper §6.2, "J&K").
  return true;
}

bool AbstractionView::keepCarried(
    const DepEdge &E, const Loop &L,
    const std::set<const Value *> &PrivateScalars) const {
  unsigned H = L.getHeader();

  // Compiler-analysis removals common to every abstraction:
  // (a) canonical induction-variable updates of a countable loop;
  const ForLoopMeta *Meta = FA.forMeta(&L);
  bool Countable = Meta && Meta->Canonical;
  if (Countable && E.MemObject == Meta->CounterStorage)
    return false;
  // (b) the loop guard's control self-dependence of a countable loop;
  if (Countable && E.Kind == DepKind::Control &&
      E.Src->getParent()->getIndex() == H)
    return false;
  // (c) iteration-private scalar temporaries.
  if (E.MemObject && PrivateScalars.count(E.MemObject))
    return false;

  switch (Kind) {
  case AbstractionKind::PDG:
    return true;
  case AbstractionKind::JK:
    return !jkRemovable(E, L);
  default:
    return true;
  }
}

LoopPlanView AbstractionView::viewFor(const Loop &L) const {
  LoopPlanView View;
  View.L = &L;

  const ForLoopMeta *Meta = FA.forMeta(&L);
  View.TripCountable = Meta && Meta->Canonical;
  View.TripCount = Meta ? Meta->tripCount() : -1;
  View.HasWorksharingDirective = worksharing(L) != nullptr;

  // Loop instruction list (non-marker), with index mapping.
  std::map<const Instruction *, unsigned> IdxOf;
  for (Instruction *I : FA.instructions()) {
    if (!L.contains(I->getParent()->getIndex()))
      continue;
    if (const auto *CI = dyn_cast<CallInst>(I))
      if (Module::isMarkerIntrinsicName(CI->getCallee()->getName()))
        continue;
    IdxOf[I] = static_cast<unsigned>(View.Insts.size());
    View.Insts.push_back(I);
  }

  std::set<const Value *> PrivateScalars =
      computeIterationPrivateScalars(FA, L);

  unsigned H = L.getHeader();

  // Dedup assumptions per (Src, Dst) instruction pair: several graph edges
  // can represent one speculated dependence.
  std::set<std::pair<const Instruction *, const Instruction *>> AssumedPairs;
  auto RecordAssumption = [&](const Instruction *Src, const Instruction *Dst) {
    if (!AssumedPairs.insert({Src, Dst}).second)
      return;
    SpecAssumption A;
    A.Id = static_cast<unsigned>(View.Assumptions.size());
    A.Header = H;
    A.Src = Src;
    A.Dst = Dst;
    A.SrcIdx = FA.indexOf(Src);
    A.DstIdx = FA.indexOf(Dst);
    View.Assumptions.push_back(A);
  };

  // Value assumptions dedup per storage: every value-speculated edge on
  // one object represents the same per-value obligation.
  std::set<const Value *> ValueAssumed;
  auto RecordValueAssumption = [&](const Value *Storage, bool IsScalar) {
    if (!Storage || !ValueAssumed.insert(Storage).second)
      return;
    ValueAssumption A;
    A.Id = static_cast<unsigned>(View.ValueAssumptions.size());
    A.Header = H;
    A.Storage = Storage;
    A.IsScalar = IsScalar;
    View.ValueAssumptions.push_back(A);
  };
  auto IsScalarAccess = [](const Instruction *I) {
    if (const auto *LI = dyn_cast<LoadInst>(I))
      return !isa<GEPInst>(LI->getPointer());
    if (const auto *SI = dyn_cast<StoreInst>(I))
      return !isa<GEPInst>(SI->getPointer());
    return false;
  };

  if (Kind == AbstractionKind::PSPDG) {
    // Consume the PS-PDG's directed edges (feature-filtered).
    for (const PSDirectedEdge &E : G->directedEdges()) {
      const PSNode &SrcN = G->node(E.Src);
      const PSNode &DstN = G->node(E.Dst);
      auto SIt = IdxOf.find(SrcN.I);
      auto DIt = IdxOf.find(DstN.I);
      if (SIt == IdxOf.end() || DIt == IdxOf.end())
        continue;
      // Common compiler-analysis removals (same as the PDG path).
      auto SoundlyRemoved = [&] {
        const ForLoopMeta *M2 = FA.forMeta(&L);
        bool Countable = M2 && M2->Canonical;
        if (Countable && E.MemObject == M2->CounterStorage)
          return true;
        if (Countable && E.Kind == DepKind::Control &&
            SrcN.I->getParent()->getIndex() == H)
          return true;
        return E.MemObject && PrivateScalars.count(E.MemObject) != 0;
      };
      bool Carried = E.CarriedAtHeaders.count(H) != 0 && !SoundlyRemoved();
      // A speculatively-removed carried level that every sound removal
      // would have kept becomes a runtime-validated assumption.
      if (E.SpecCarriedAtHeaders.count(H) != 0 && !SoundlyRemoved())
        RecordAssumption(SrcN.I, DstN.I);
      if (E.ValueSpecCarriedAtHeaders.count(H) != 0 && !SoundlyRemoved())
        RecordValueAssumption(E.MemObject, IsScalarAccess(SrcN.I));
      if (!Carried && !E.Intra)
        continue;
      LoopDepEdge LE;
      LE.Src = SIt->second;
      LE.Dst = DIt->second;
      LE.CarriedAtLoop = Carried;
      if (Carried) {
        auto OIt = E.OracleAtHeaders.find(H);
        LE.Oracle = OIt == E.OracleAtHeaders.end() ? nullptr : OIt->second;
        LE.Must = E.MustCarriedAtHeaders.count(H) != 0;
      }
      View.Edges.push_back(LE);
    }
    for (const PSUndirectedEdge &E : G->undirectedEdges())
      if (E.CarriedAtHeaders.count(H))
        ++View.NumOrderlessConflicts;
    return View;
  }

  // PDG / J&K: filter raw dependence edges. (OpenMP builds no view.)
  for (const DepEdge &E : Edges) {
    auto SIt = IdxOf.find(E.Src);
    auto DIt = IdxOf.find(E.Dst);
    if (SIt == IdxOf.end() || DIt == IdxOf.end())
      continue;
    bool Carried = E.isCarriedAt(H) && keepCarried(E, L, PrivateScalars);
    if (E.isSpecCarriedAt(H) && keepCarried(E, L, PrivateScalars))
      RecordAssumption(E.Src, E.Dst);
    if (E.isValueSpecCarriedAt(H) && keepCarried(E, L, PrivateScalars))
      RecordValueAssumption(E.MemObject, IsScalarAccess(E.Src));
    if (!Carried && !E.Intra)
      continue;
    LoopDepEdge LE;
    LE.Src = SIt->second;
    LE.Dst = DIt->second;
    LE.CarriedAtLoop = Carried;
    if (Carried) {
      LE.Oracle = E.oracleAt(H);
      LE.Must = E.isMustCarriedAt(H);
    }
    View.Edges.push_back(LE);
  }
  return View;
}

LoopPlanView psc::soundAlternative(const LoopPlanView &PV) {
  LoopPlanView Sound = PV;
  Sound.Assumptions.clear();
  Sound.ValueAssumptions.clear();

  std::map<const Instruction *, unsigned> IdxOf;
  for (unsigned I = 0; I < Sound.Insts.size(); ++I)
    IdxOf[Sound.Insts[I]] = I;

  std::set<std::pair<unsigned, unsigned>> Present;
  for (LoopDepEdge &E : Sound.Edges)
    if (E.CarriedAtLoop)
      Present.insert({E.Src, E.Dst});
  auto AddCarried = [&](const Instruction *Src, const Instruction *Dst,
                        const char *Oracle) {
    auto SIt = IdxOf.find(Src);
    auto DIt = IdxOf.find(Dst);
    if (SIt == IdxOf.end() || DIt == IdxOf.end())
      return;
    if (!Present.insert({SIt->second, DIt->second}).second)
      return;
    LoopDepEdge LE;
    LE.Src = SIt->second;
    LE.Dst = DIt->second;
    LE.CarriedAtLoop = true;
    LE.Oracle = Oracle; // the stage whose removal was rolled back
    Sound.Edges.push_back(LE);
  };

  // Memory assumptions restore exactly the removed edge.
  for (const SpecAssumption &A : PV.Assumptions)
    AddCarried(A.Src, A.Dst, specOracleName());

  // Value assumptions restore the conservative whole-object carried
  // conflicts: every writer of the storage against every access of it
  // (both directions) — what the sound alias verdict would have kept.
  for (const ValueAssumption &A : PV.ValueAssumptions) {
    std::vector<const Instruction *> Writers, Accessors;
    for (const Instruction *I : Sound.Insts) {
      if (const auto *LI = dyn_cast<LoadInst>(I)) {
        if (rootStorage(LI->getPointer()) == A.Storage)
          Accessors.push_back(I);
      } else if (const auto *SI = dyn_cast<StoreInst>(I)) {
        if (rootStorage(SI->getPointer()) == A.Storage) {
          Writers.push_back(I);
          Accessors.push_back(I);
        }
      }
    }
    for (const Instruction *W : Writers)
      for (const Instruction *X : Accessors) {
        AddCarried(W, X, valueSpecOracleName());
        AddCarried(X, W, valueSpecOracleName());
      }
  }
  return Sound;
}
