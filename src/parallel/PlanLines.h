//===- PlanLines.h - Canonical `--plans` rendering ---------------*- C++ -*-===//
///
/// \file
/// The one source of truth for the per-loop plan table printed by
/// `pscc --plans` and served by the resident service (Server.cpp stage 2).
/// Both consumers funnel through renderPlanLine(), so served and
/// standalone output are byte-identical **by construction** — the CI
/// served-vs-local diff job is the proof, not the mechanism.
///
/// The split into summarize + render exists for the service's analysis
/// caches: a LoopPlanSummary is a tiny POD distilled from the
/// (expensive) AbstractionView/LoopSCCDAG pass, so the service can hold
/// summaries in its per-module analysis bundles and re-render lines
/// without re-running any analysis.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_PARALLEL_PLANLINES_H
#define PSPDG_PARALLEL_PLANLINES_H

#include "parallel/AbstractionView.h"

#include <string>
#include <vector>

namespace psc {

/// Everything one `--plans` row says about a loop, with the analysis
/// already burned in.
struct LoopPlanSummary {
  std::string Fn;       ///< Function name (printed as @Fn).
  std::string Header;   ///< Header block name.
  unsigned Depth = 0;
  unsigned NumSCCs = 0;
  unsigned NumSeqSCCs = 0;
  bool DOALL = false;   ///< allParallel() && TripCountable.
  bool Lock = false;    ///< NumOrderlessConflicts != 0.
};

/// Distills the row for loop \p L from its plan view and SCC DAG.
LoopPlanSummary summarizeLoopPlan(const FunctionAnalysis &FA, const Loop &L,
                                  const LoopPlanView &PV,
                                  const LoopSCCDAG &DAG);

/// The canonical row (includes the trailing newline).
std::string renderPlanLine(const LoopPlanSummary &S);

/// Summaries for every loop of FA's function under \p View, in loop-forest
/// order (the `--plans` order).
std::vector<LoopPlanSummary> summarizePlans(const FunctionAnalysis &FA,
                                            const AbstractionView &View);

/// The full `--plans` block for one function: summarize + render.
std::string renderPlanLines(const FunctionAnalysis &FA,
                            const AbstractionView &View);

} // namespace psc

#endif // PSPDG_PARALLEL_PLANLINES_H
