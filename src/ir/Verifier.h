//===- Verifier.h - IR well-formedness checks -------------------*- C++ -*-===//
///
/// \file
/// Structural validation of a Module: every reachable block terminated,
/// operand typing, pointer-typed memory operands, call signatures, and
/// ParallelInfo referential integrity (directives point at real loop
/// headers, clause storage resolved). Returns human-readable diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_IR_VERIFIER_H
#define PSPDG_IR_VERIFIER_H

#include <string>
#include <vector>

namespace psc {

class Module;
class Function;

/// Collects verification failures; empty result means the module is valid.
std::vector<std::string> verifyModule(const Module &M);

/// Convenience: true if the module verifies cleanly.
bool isModuleValid(const Module &M);

} // namespace psc

#endif // PSPDG_IR_VERIFIER_H
