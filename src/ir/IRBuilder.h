//===- IRBuilder.h - Convenience instruction factory -----------*- C++ -*-===//
///
/// \file
/// Creates instructions at an insertion point, wiring up types, stable ids,
/// and ownership. All create* methods append to the current block.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_IR_IRBUILDER_H
#define PSPDG_IR_IRBUILDER_H

#include "ir/Module.h"

#include <cassert>
#include <memory>

namespace psc {

/// Streams new instructions into a basic block.
class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M) {}

  void setInsertPoint(BasicBlock *BB) { Insert = BB; }
  BasicBlock *getInsertBlock() const { return Insert; }

  Module &getModule() { return M; }
  TypeContext &types() { return M.getTypes(); }

  // --- Memory -------------------------------------------------------------

  AllocaInst *createAlloca(Type *ObjectTy, const std::string &VarName) {
    Type *Elem = ObjectTy->isArray() ? cast<ArrayType>(ObjectTy)->getElement()
                                     : ObjectTy;
    auto I = std::make_unique<AllocaInst>(types().getPointerTy(Elem), ObjectTy,
                                          VarName);
    return append(std::move(I));
  }

  LoadInst *createLoad(Value *Ptr) {
    auto *PT = cast<PointerType>(Ptr->getType());
    return append(std::make_unique<LoadInst>(PT->getPointee(), Ptr));
  }

  StoreInst *createStore(Value *Val, Value *Ptr) {
    return append(
        std::make_unique<StoreInst>(types().getVoidTy(), Val, Ptr));
  }

  GEPInst *createGEP(Value *Base, Value *Index) {
    auto *PT = cast<PointerType>(Base->getType());
    return append(std::make_unique<GEPInst>(PT, Base, Index));
  }

  // --- Arithmetic -----------------------------------------------------------

  BinaryInst *createBinary(BinaryInst::BinOp Op, Value *LHS, Value *RHS) {
    assert(LHS->getType() == RHS->getType() && "binop type mismatch");
    return append(
        std::make_unique<BinaryInst>(LHS->getType(), Op, LHS, RHS));
  }

  UnaryInst *createUnary(UnaryInst::UnOp Op, Value *V) {
    Type *Ty =
        Op == UnaryInst::UnOp::Not ? types().getIntTy() : V->getType();
    return append(std::make_unique<UnaryInst>(Ty, Op, V));
  }

  CmpInst *createCmp(CmpInst::Predicate Pred, Value *LHS, Value *RHS) {
    assert(LHS->getType() == RHS->getType() && "cmp type mismatch");
    return append(
        std::make_unique<CmpInst>(types().getIntTy(), Pred, LHS, RHS));
  }

  CastInst *createIntToFloat(Value *V) {
    return append(std::make_unique<CastInst>(
        types().getFloatTy(), CastInst::CastOp::IntToFloat, V));
  }

  CastInst *createFloatToInt(Value *V) {
    return append(std::make_unique<CastInst>(
        types().getIntTy(), CastInst::CastOp::FloatToInt, V));
  }

  // --- Control flow ---------------------------------------------------------

  BranchInst *createBr(BasicBlock *Target) {
    return append(std::make_unique<BranchInst>(types().getVoidTy(), Target));
  }

  CondBranchInst *createCondBr(Value *Cond, BasicBlock *TrueBB,
                               BasicBlock *FalseBB) {
    return append(std::make_unique<CondBranchInst>(types().getVoidTy(), Cond,
                                                   TrueBB, FalseBB));
  }

  ReturnInst *createRetVoid() {
    return append(std::make_unique<ReturnInst>(types().getVoidTy()));
  }

  ReturnInst *createRet(Value *V) {
    return append(std::make_unique<ReturnInst>(types().getVoidTy(), V));
  }

  CallInst *createCall(Function *Callee, std::vector<Value *> Args) {
    return append(std::make_unique<CallInst>(Callee->getReturnType(), Callee,
                                             std::move(Args)));
  }

  /// Emits a call to a marker/runtime intrinsic by name.
  CallInst *createIntrinsicCall(const std::string &IntrinsicName,
                                std::vector<Value *> Args) {
    return createCall(M.getOrCreateIntrinsic(IntrinsicName), std::move(Args));
  }

private:
  template <typename InstT> InstT *append(std::unique_ptr<InstT> I) {
    assert(Insert && "no insertion point set");
    I->setId(M.takeNextValueId());
    InstT *Raw = I.get();
    Insert->append(std::move(I));
    return Raw;
  }

  Module &M;
  BasicBlock *Insert = nullptr;
};

} // namespace psc

#endif // PSPDG_IR_IRBUILDER_H
