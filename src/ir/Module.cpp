//===- Module.cpp ---------------------------------------------*- C++ -*-===//

#include "ir/Module.h"

#include "support/ErrorHandling.h"

#include <array>
#include <sstream>

using namespace psc;

Function *Module::createFunction(const std::string &FuncName, Type *RetTy,
                                 const std::vector<Type *> &ParamTys,
                                 const std::vector<std::string> &ParamNames) {
  assert(!getFunction(FuncName) && "duplicate function name");
  assert(ParamTys.size() == ParamNames.size() && "param arity mismatch");
  FunctionType *FTy = Types.getFunctionTy(RetTy, ParamTys);
  Functions.push_back(std::make_unique<Function>(FTy, FuncName, this));
  Function *F = Functions.back().get();
  F->setId(takeNextValueId());
  for (unsigned I = 0; I < ParamTys.size(); ++I) {
    auto Arg = std::make_unique<Argument>(ParamTys[I], ParamNames[I], I);
    Arg->setId(takeNextValueId());
    F->addArgument(std::move(Arg));
  }
  return F;
}

Function *Module::getFunction(const std::string &FuncName) const {
  for (auto &F : Functions)
    if (F->getName() == FuncName)
      return F.get();
  return nullptr;
}

namespace {

struct IntrinsicSig {
  const char *Name;
  unsigned NumIntParams;
  unsigned NumFloatParams;
  bool ReturnsFloat;
  bool ReturnsVoid;
};

constexpr std::array<IntrinsicSig, 18> IntrinsicTable = {{
    {intrinsics::RegionBegin, 1, 0, false, true},
    {intrinsics::RegionEnd, 1, 0, false, true},
    {intrinsics::BarrierMarker, 0, 0, false, true},
    {intrinsics::TaskWaitMarker, 0, 0, false, true},
    {intrinsics::Print, 1, 0, false, true},
    {intrinsics::PrintF, 0, 1, false, true},
    {intrinsics::Sqrt, 0, 1, true, false},
    {intrinsics::Fabs, 0, 1, true, false},
    {intrinsics::Sin, 0, 1, true, false},
    {intrinsics::Cos, 0, 1, true, false},
    {intrinsics::Exp, 0, 1, true, false},
    {intrinsics::Log, 0, 1, true, false},
    {intrinsics::Pow, 0, 2, true, false},
    {intrinsics::IMin, 2, 0, false, false},
    {intrinsics::IMax, 2, 0, false, false},
    {intrinsics::FMin, 0, 2, true, false},
    {intrinsics::FMax, 0, 2, true, false},
    {intrinsics::Lcg, 1, 0, false, false},
}};

const IntrinsicSig *lookupIntrinsic(const std::string &Name) {
  for (const IntrinsicSig &Sig : IntrinsicTable)
    if (Name == Sig.Name)
      return &Sig;
  return nullptr;
}

} // namespace

bool Module::isIntrinsicName(const std::string &FuncName) {
  return lookupIntrinsic(FuncName) != nullptr;
}

bool Module::isMarkerIntrinsicName(const std::string &FuncName) {
  return FuncName == intrinsics::RegionBegin ||
         FuncName == intrinsics::RegionEnd ||
         FuncName == intrinsics::BarrierMarker ||
         FuncName == intrinsics::TaskWaitMarker;
}

Function *Module::getOrCreateIntrinsic(const std::string &IntrinsicName) {
  if (Function *F = getFunction(IntrinsicName))
    return F;
  const IntrinsicSig *Sig = lookupIntrinsic(IntrinsicName);
  if (!Sig)
    reportFatalError("unknown intrinsic '" + IntrinsicName + "'");
  std::vector<Type *> Params;
  std::vector<std::string> Names;
  for (unsigned I = 0; I < Sig->NumIntParams; ++I) {
    Params.push_back(Types.getIntTy());
    Names.push_back("a" + std::to_string(I));
  }
  for (unsigned I = 0; I < Sig->NumFloatParams; ++I) {
    Params.push_back(Types.getFloatTy());
    Names.push_back("x" + std::to_string(I));
  }
  Type *Ret = Sig->ReturnsVoid
                  ? Types.getVoidTy()
                  : (Sig->ReturnsFloat ? Types.getFloatTy() : Types.getIntTy());
  return createFunction(IntrinsicName, Ret, Params, Names);
}

GlobalVariable *Module::createGlobal(const std::string &VarName,
                                     Type *ObjectTy) {
  assert(!getGlobal(VarName) && "duplicate global name");
  PointerType *PT = Types.getPointerTy(
      ObjectTy->isArray() ? cast<ArrayType>(ObjectTy)->getElement()
                          : ObjectTy);
  Globals.push_back(std::make_unique<GlobalVariable>(PT, ObjectTy, VarName));
  GlobalVariable *GV = Globals.back().get();
  GV->setId(takeNextValueId());
  GV->setGlobalIndex(static_cast<unsigned>(Globals.size() - 1));
  return GV;
}

GlobalVariable *Module::getGlobal(const std::string &VarName) const {
  for (auto &G : Globals)
    if (G->getName() == VarName)
      return G.get();
  return nullptr;
}

ConstantInt *Module::getConstantInt(int64_t V) {
  for (auto &C : IntConstants)
    if (C->getValue() == V)
      return C.get();
  IntConstants.push_back(std::make_unique<ConstantInt>(Types.getIntTy(), V));
  IntConstants.back()->setId(takeNextValueId());
  return IntConstants.back().get();
}

ConstantFloat *Module::getConstantFloat(double V) {
  for (auto &C : FloatConstants)
    if (C->getValue() == V)
      return C.get();
  FloatConstants.push_back(
      std::make_unique<ConstantFloat>(Types.getFloatTy(), V));
  FloatConstants.back()->setId(takeNextValueId());
  return FloatConstants.back().get();
}
