//===- Function.h - Function definition/declaration -------------*- C++ -*-===//
///
/// \file
/// A Function owns its arguments and basic blocks. Functions without blocks
/// are declarations; the runtime built-ins (print, sqrt, region markers) are
/// declarations whose semantics live in the emulator.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_IR_FUNCTION_H
#define PSPDG_IR_FUNCTION_H

#include "ir/BasicBlock.h"
#include "ir/Value.h"

#include <memory>
#include <string>
#include <vector>

namespace psc {

class Module;

/// A function definition or declaration.
class Function : public Value {
public:
  Function(FunctionType *FTy, std::string FuncName, Module *Parent)
      : Value(ValueKind::Function, FTy), Parent(Parent) {
    setName(std::move(FuncName));
  }

  Module *getParent() const { return Parent; }

  FunctionType *getFunctionType() const {
    return static_cast<FunctionType *>(getType());
  }
  Type *getReturnType() const { return getFunctionType()->getReturnType(); }

  bool isDeclaration() const { return Blocks.empty(); }

  // Arguments.
  Argument *addArgument(std::unique_ptr<Argument> Arg) {
    Args.push_back(std::move(Arg));
    return Args.back().get();
  }
  unsigned getNumArgs() const { return static_cast<unsigned>(Args.size()); }
  Argument *getArg(unsigned I) const { return Args[I].get(); }

  // Blocks.
  BasicBlock *createBlock(std::string BlockName) {
    Blocks.push_back(std::make_unique<BasicBlock>(
        this, std::move(BlockName), static_cast<unsigned>(Blocks.size())));
    return Blocks.back().get();
  }
  unsigned getNumBlocks() const { return static_cast<unsigned>(Blocks.size()); }
  BasicBlock *getBlock(unsigned I) const { return Blocks[I].get(); }
  BasicBlock *getEntryBlock() const {
    return Blocks.empty() ? nullptr : Blocks.front().get();
  }

  class block_iterator {
  public:
    using Inner = std::vector<std::unique_ptr<BasicBlock>>::const_iterator;
    explicit block_iterator(Inner It) : It(It) {}
    BasicBlock *operator*() const { return It->get(); }
    block_iterator &operator++() {
      ++It;
      return *this;
    }
    bool operator!=(const block_iterator &O) const { return It != O.It; }

  private:
    Inner It;
  };

  block_iterator begin() const { return block_iterator(Blocks.begin()); }
  block_iterator end() const { return block_iterator(Blocks.end()); }

  /// Total instruction count across all blocks.
  size_t getInstructionCount() const {
    size_t N = 0;
    for (auto &BB : Blocks)
      N += BB->size();
    return N;
  }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Function;
  }

private:
  Module *Parent;
  std::vector<std::unique_ptr<Argument>> Args;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

} // namespace psc

#endif // PSPDG_IR_FUNCTION_H
