//===- Printer.cpp - Textual IR rendering ----------------------*- C++ -*-===//
///
/// \file
/// Implements Module::str(). The textual form exists for debugging, golden
/// tests, and the examples; it is not parsed back.
///
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include "support/ErrorHandling.h"

#include <map>
#include <sstream>

using namespace psc;

namespace {

class FunctionPrinter {
public:
  explicit FunctionPrinter(const Function &F) : F(F) { numberValues(); }

  void print(std::ostringstream &OS) {
    OS << (F.isDeclaration() ? "declare " : "define ")
       << F.getReturnType()->str() << " @" << F.getName() << "(";
    for (unsigned I = 0; I < F.getNumArgs(); ++I) {
      if (I)
        OS << ", ";
      Argument *A = F.getArg(I);
      OS << A->getType()->str() << " %" << A->getName();
    }
    OS << ")";
    if (F.isDeclaration()) {
      OS << "\n";
      return;
    }
    OS << " {\n";
    for (BasicBlock *BB : F) {
      OS << BB->getName() << ":\n";
      for (Instruction *I : *BB)
        printInstruction(OS, I);
    }
    OS << "}\n";
  }

private:
  void numberValues() {
    unsigned Next = 0;
    for (unsigned I = 0; I < F.getNumArgs(); ++I)
      Number[F.getArg(I)] = Next++;
    for (BasicBlock *BB : F)
      for (Instruction *I : *BB)
        if (!I->getType()->isVoid())
          Number[I] = Next++;
  }

  std::string ref(const Value *V) {
    if (auto *CI = dyn_cast<ConstantInt>(V))
      return std::to_string(CI->getValue());
    if (auto *CF = dyn_cast<ConstantFloat>(V)) {
      std::ostringstream OS;
      OS << CF->getValue();
      return OS.str();
    }
    if (auto *GV = dyn_cast<GlobalVariable>(V))
      return "@" + GV->getName();
    if (auto *Fn = dyn_cast<Function>(V))
      return "@" + Fn->getName();
    auto It = Number.find(V);
    std::string N = It != Number.end() ? std::to_string(It->second) : "?";
    if (!V->getName().empty())
      return "%" + V->getName() + "." + N;
    return "%v" + N;
  }

  void printInstruction(std::ostringstream &OS, const Instruction *I) {
    OS << "  ";
    if (!I->getType()->isVoid())
      OS << ref(I) << " = ";
    switch (I->getKind()) {
    case Value::ValueKind::Alloca: {
      const auto *AI = cast<AllocaInst>(I);
      OS << "alloca " << AI->getAllocatedType()->str();
      break;
    }
    case Value::ValueKind::Load:
      OS << "load " << ref(cast<LoadInst>(I)->getPointer());
      break;
    case Value::ValueKind::Store: {
      const auto *SI = cast<StoreInst>(I);
      OS << "store " << ref(SI->getStoredValue()) << ", "
         << ref(SI->getPointer());
      break;
    }
    case Value::ValueKind::GEP: {
      const auto *GI = cast<GEPInst>(I);
      OS << "gep " << ref(GI->getBase()) << "[" << ref(GI->getIndex()) << "]";
      break;
    }
    case Value::ValueKind::Binary: {
      const auto *BI = cast<BinaryInst>(I);
      OS << (BI->getType()->isFloat() ? "f" : "")
         << BinaryInst::getBinOpName(BI->getBinOp()) << " " << ref(BI->getLHS())
         << ", " << ref(BI->getRHS());
      break;
    }
    case Value::ValueKind::Unary: {
      const auto *UI = cast<UnaryInst>(I);
      OS << (UI->getUnOp() == UnaryInst::UnOp::Neg ? "neg " : "not ")
         << ref(UI->getOperand(0));
      break;
    }
    case Value::ValueKind::Cmp: {
      const auto *CI = cast<CmpInst>(I);
      OS << "cmp " << CmpInst::getPredicateName(CI->getPredicate()) << " "
         << ref(CI->getLHS()) << ", " << ref(CI->getRHS());
      break;
    }
    case Value::ValueKind::Cast:
      OS << I->getOpcodeName() << " " << ref(I->getOperand(0));
      break;
    case Value::ValueKind::Br:
      OS << "br " << cast<BranchInst>(I)->getTarget()->getName();
      break;
    case Value::ValueKind::CondBr: {
      const auto *CB = cast<CondBranchInst>(I);
      OS << "condbr " << ref(CB->getCondition()) << ", "
         << CB->getTrueTarget()->getName() << ", "
         << CB->getFalseTarget()->getName();
      break;
    }
    case Value::ValueKind::Ret: {
      const auto *RI = cast<ReturnInst>(I);
      OS << "ret";
      if (RI->hasReturnValue())
        OS << " " << ref(RI->getReturnValue());
      break;
    }
    case Value::ValueKind::Call: {
      const auto *CI = cast<CallInst>(I);
      OS << "call @" << CI->getCallee()->getName() << "(";
      for (unsigned A = 0; A < CI->getNumArgs(); ++A) {
        if (A)
          OS << ", ";
        OS << ref(CI->getArg(A));
      }
      OS << ")";
      break;
    }
    default:
      psc_unreachable("unhandled instruction kind in printer");
    }
    OS << "\n";
  }

  const Function &F;
  std::map<const Value *, unsigned> Number;
};

} // namespace

std::string Module::str() const {
  std::ostringstream OS;
  OS << "; module '" << Name << "'\n";
  for (auto &G : Globals) {
    OS << "@" << G->getName() << " = global " << G->getObjectType()->str();
    if (G->hasScalarInit())
      OS << " init " << G->getScalarInit();
    OS << "\n";
  }
  for (auto &F : Functions) {
    OS << "\n";
    FunctionPrinter(*F).print(OS);
  }
  return OS.str();
}
