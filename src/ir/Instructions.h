//===- Instructions.h - Instruction classes of the PSC IR ------*- C++ -*-===//
///
/// \file
/// The Instruction hierarchy. The IR is a RISC-like three-address form in
/// alloca+load/store shape (clang -O0 shape): source variables live in
/// memory objects (allocas/globals) and expression temporaries are virtual
/// registers local to their defining block. There is no phi; cross-block
/// data flow goes through memory, which is exactly the situation in which
/// the PS-PDG's parallel-semantic-variable annotations pay off (paper §3.6).
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_IR_INSTRUCTIONS_H
#define PSPDG_IR_INSTRUCTIONS_H

#include "ir/Value.h"

#include <cassert>
#include <vector>

namespace psc {

class BasicBlock;
class Function;

/// Base class of all instructions. Operands are stored uniformly so that
/// dependence analysis can walk them generically; successor blocks of
/// terminators are stored separately (they are not data operands).
class Instruction : public Value {
public:
  Instruction(ValueKind K, Type *Ty) : Value(K, Ty) {}

  BasicBlock *getParent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  unsigned getNumOperands() const {
    return static_cast<unsigned>(Operands.size());
  }
  Value *getOperand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  void setOperand(unsigned I, Value *V) {
    assert(I < Operands.size() && "operand index out of range");
    Operands[I] = V;
  }
  const std::vector<Value *> &operands() const { return Operands; }

  /// True for instructions that end a basic block (Br, CondBr, Ret).
  bool isTerminator() const {
    return getKind() == ValueKind::Br || getKind() == ValueKind::CondBr ||
           getKind() == ValueKind::Ret;
  }

  /// True if this instruction reads or writes memory (Load, Store, and
  /// calls to functions that may access memory).
  bool mayAccessMemory() const;

  /// Opcode mnemonic for printing ("load", "add", ...).
  const char *getOpcodeName() const;

  static bool classof(const Value *V) {
    return V->getKind() > ValueKind::InstBegin &&
           V->getKind() < ValueKind::InstEnd;
  }

protected:
  void addOperand(Value *V) { Operands.push_back(V); }

private:
  BasicBlock *Parent = nullptr;
  std::vector<Value *> Operands;
};

/// Stack allocation of a scalar or array object in the enclosing function.
/// The result is a pointer to the allocated object.
class AllocaInst : public Instruction {
public:
  AllocaInst(PointerType *PtrTy, Type *AllocatedTy, std::string VarName)
      : Instruction(ValueKind::Alloca, PtrTy), AllocatedTy(AllocatedTy) {
    setName(std::move(VarName));
  }

  Type *getAllocatedType() const { return AllocatedTy; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Alloca;
  }

private:
  Type *AllocatedTy;
};

/// Reads a scalar through a pointer.
class LoadInst : public Instruction {
public:
  LoadInst(Type *Ty, Value *Ptr) : Instruction(ValueKind::Load, Ty) {
    addOperand(Ptr);
  }

  Value *getPointer() const { return getOperand(0); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Load;
  }
};

/// Writes a scalar through a pointer.
class StoreInst : public Instruction {
public:
  StoreInst(Type *VoidTy, Value *Val, Value *Ptr)
      : Instruction(ValueKind::Store, VoidTy) {
    addOperand(Val);
    addOperand(Ptr);
  }

  Value *getStoredValue() const { return getOperand(0); }
  Value *getPointer() const { return getOperand(1); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Store;
  }
};

/// Computes the address of an array element: result = &Base[Index].
class GEPInst : public Instruction {
public:
  GEPInst(PointerType *ResultTy, Value *Base, Value *Index)
      : Instruction(ValueKind::GEP, ResultTy) {
    addOperand(Base);
    addOperand(Index);
  }

  Value *getBase() const { return getOperand(0); }
  Value *getIndex() const { return getOperand(1); }

  static bool classof(const Value *V) { return V->getKind() == ValueKind::GEP; }
};

/// Two-operand arithmetic/logical operation. The operand type (i64 vs f64)
/// selects integer vs floating-point semantics.
class BinaryInst : public Instruction {
public:
  enum class BinOp { Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr };

  BinaryInst(Type *Ty, BinOp Op, Value *LHS, Value *RHS)
      : Instruction(ValueKind::Binary, Ty), Op(Op) {
    addOperand(LHS);
    addOperand(RHS);
  }

  BinOp getBinOp() const { return Op; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  static const char *getBinOpName(BinOp Op);

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Binary;
  }

private:
  BinOp Op;
};

/// One-operand operation: arithmetic negation or logical not.
class UnaryInst : public Instruction {
public:
  enum class UnOp { Neg, Not };

  UnaryInst(Type *Ty, UnOp Op, Value *V)
      : Instruction(ValueKind::Unary, Ty), Op(Op) {
    addOperand(V);
  }

  UnOp getUnOp() const { return Op; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Unary;
  }

private:
  UnOp Op;
};

/// Comparison producing an i64 boolean (0 or 1).
class CmpInst : public Instruction {
public:
  enum class Predicate { EQ, NE, LT, LE, GT, GE };

  CmpInst(Type *IntTy, Predicate Pred, Value *LHS, Value *RHS)
      : Instruction(ValueKind::Cmp, IntTy), Pred(Pred) {
    addOperand(LHS);
    addOperand(RHS);
  }

  Predicate getPredicate() const { return Pred; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  static const char *getPredicateName(Predicate Pred);

  static bool classof(const Value *V) { return V->getKind() == ValueKind::Cmp; }

private:
  Predicate Pred;
};

/// Numeric conversion between i64 and f64.
class CastInst : public Instruction {
public:
  enum class CastOp { IntToFloat, FloatToInt };

  CastInst(Type *Ty, CastOp Op, Value *V)
      : Instruction(ValueKind::Cast, Ty), Op(Op) {
    addOperand(V);
  }

  CastOp getCastOp() const { return Op; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Cast;
  }

private:
  CastOp Op;
};

/// Unconditional branch.
class BranchInst : public Instruction {
public:
  BranchInst(Type *VoidTy, BasicBlock *Target)
      : Instruction(ValueKind::Br, VoidTy), Target(Target) {}

  BasicBlock *getTarget() const { return Target; }
  void setTarget(BasicBlock *BB) { Target = BB; }

  static bool classof(const Value *V) { return V->getKind() == ValueKind::Br; }

private:
  BasicBlock *Target;
};

/// Two-way conditional branch on an i64 condition (0 = false).
class CondBranchInst : public Instruction {
public:
  CondBranchInst(Type *VoidTy, Value *Cond, BasicBlock *TrueBB,
                 BasicBlock *FalseBB)
      : Instruction(ValueKind::CondBr, VoidTy), TrueBB(TrueBB),
        FalseBB(FalseBB) {
    addOperand(Cond);
  }

  Value *getCondition() const { return getOperand(0); }
  BasicBlock *getTrueTarget() const { return TrueBB; }
  BasicBlock *getFalseTarget() const { return FalseBB; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::CondBr;
  }

private:
  BasicBlock *TrueBB;
  BasicBlock *FalseBB;
};

/// Function return, with an optional value.
class ReturnInst : public Instruction {
public:
  explicit ReturnInst(Type *VoidTy) : Instruction(ValueKind::Ret, VoidTy) {}
  ReturnInst(Type *VoidTy, Value *RetVal)
      : Instruction(ValueKind::Ret, VoidTy) {
    addOperand(RetVal);
  }

  bool hasReturnValue() const { return getNumOperands() == 1; }
  Value *getReturnValue() const {
    assert(hasReturnValue() && "void return has no value");
    return getOperand(0);
  }

  static bool classof(const Value *V) { return V->getKind() == ValueKind::Ret; }
};

/// Direct call. Built-in runtime functions (print, sqrt, region markers)
/// are declarations recognized by name; see Module::isIntrinsicName.
class CallInst : public Instruction {
public:
  CallInst(Type *RetTy, Function *Callee, std::vector<Value *> Args);

  Function *getCallee() const { return Callee; }
  unsigned getNumArgs() const { return getNumOperands(); }
  Value *getArg(unsigned I) const { return getOperand(I); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Call;
  }

private:
  Function *Callee;
};

} // namespace psc

#endif // PSPDG_IR_INSTRUCTIONS_H
