//===- Dominators.h - Dominator and post-dominator trees -------*- C++ -*-===//
///
/// \file
/// Dominator / post-dominator computation via the Cooper–Harvey–Kennedy
/// iterative algorithm, plus dominance frontiers. Post-dominance frontiers
/// yield control dependences (Ferrante et al., the original PDG paper).
/// Multiple-exit functions are handled with a virtual exit node.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_IR_DOMINATORS_H
#define PSPDG_IR_DOMINATORS_H

#include "ir/CFG.h"

#include <vector>

namespace psc {

/// Dominator tree over block indices. With Post=true, computes the
/// post-dominator tree on the reversed CFG (virtual exit = index size()).
class DominatorTree {
public:
  DominatorTree(const CFG &G, bool Post);

  static constexpr unsigned None = ~0u;

  /// Immediate dominator of \p Block, or None for the root / unreachable
  /// blocks. The virtual root (entry, or virtual exit for post-dominance)
  /// has idom None.
  unsigned getIDom(unsigned Block) const { return IDom[Block]; }

  /// True if \p A dominates \p B (reflexive).
  bool dominates(unsigned A, unsigned B) const;

  /// Index of the virtual exit node for post-dominator trees (== number of
  /// real blocks), or None for dominator trees.
  unsigned getVirtualExit() const { return VirtualExit; }

  bool isPostDominatorTree() const { return VirtualExit != None; }

  /// Dominance frontier of every block. For post-dominator trees this is
  /// the *post-dominance frontier*: B is control-dependent on every block
  /// in PDF(B)... more precisely, PDF(B) contains the branches controlling
  /// whether B executes.
  const std::vector<std::vector<unsigned>> &frontiers() const {
    return Frontier;
  }

private:
  std::vector<unsigned> IDom;
  std::vector<std::vector<unsigned>> Frontier;
  unsigned VirtualExit = None;
};

} // namespace psc

#endif // PSPDG_IR_DOMINATORS_H
