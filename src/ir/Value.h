//===- Value.h - Base class of all IR values --------------------*- C++ -*-===//
///
/// \file
/// The Value hierarchy of the PSC IR, modeled on LLVM's: every entity an
/// instruction can reference (constants, arguments, globals, functions, and
/// instruction results) is a Value with a Type and a stable per-module id.
/// Kind discriminators support the isa/cast/dyn_cast templates.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_IR_VALUE_H
#define PSPDG_IR_VALUE_H

#include "ir/Type.h"
#include "support/Casting.h"

#include <cstdint>
#include <string>

namespace psc {

/// Root of the IR value hierarchy.
class Value {
public:
  /// Discriminator for isa/cast. Instruction kinds occupy the contiguous
  /// range (InstBegin, InstEnd) so Instruction::classof is a range check.
  enum class ValueKind {
    Argument,
    ConstantInt,
    ConstantFloat,
    GlobalVariable,
    Function,
    InstBegin,
    Alloca,
    Load,
    Store,
    GEP,
    Binary,
    Unary,
    Cmp,
    Cast,
    Br,
    CondBr,
    Ret,
    Call,
    InstEnd
  };

  Value(ValueKind K, Type *Ty) : Kind(K), Ty(Ty) {}
  virtual ~Value() = default;

  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;

  ValueKind getKind() const { return Kind; }
  Type *getType() const { return Ty; }

  /// Stable id, unique within the owning Module; assigned at creation.
  uint64_t getId() const { return Id; }
  void setId(uint64_t NewId) { Id = NewId; }

  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

private:
  ValueKind Kind;
  Type *Ty;
  uint64_t Id = 0;
  std::string Name;
};

/// Formal parameter of a Function.
class Argument : public Value {
public:
  Argument(Type *Ty, std::string ArgName, unsigned ArgIndex)
      : Value(ValueKind::Argument, Ty), ArgIndex(ArgIndex) {
    setName(std::move(ArgName));
  }

  unsigned getArgIndex() const { return ArgIndex; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Argument;
  }

private:
  unsigned ArgIndex;
};

/// 64-bit signed integer constant. Uniqued per Module.
class ConstantInt : public Value {
public:
  ConstantInt(Type *IntTy, int64_t V)
      : Value(ValueKind::ConstantInt, IntTy), Val(V) {}

  int64_t getValue() const { return Val; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::ConstantInt;
  }

private:
  int64_t Val;
};

/// Double-precision floating-point constant. Uniqued per Module.
class ConstantFloat : public Value {
public:
  ConstantFloat(Type *FloatTy, double V)
      : Value(ValueKind::ConstantFloat, FloatTy), Val(V) {}

  double getValue() const { return Val; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::ConstantFloat;
  }

private:
  double Val;
};

/// Module-scope variable: a scalar or array object. Its Value type is a
/// pointer to the object type (like LLVM globals). Zero-initialized unless
/// a scalar initializer is attached.
class GlobalVariable : public Value {
public:
  GlobalVariable(PointerType *PtrTy, Type *ObjectTy, std::string VarName)
      : Value(ValueKind::GlobalVariable, PtrTy), ObjectTy(ObjectTy) {
    setName(std::move(VarName));
  }

  Type *getObjectType() const { return ObjectTy; }

  /// Dense per-module global number, assigned at creation in declaration
  /// order. The execution engines key their flat global-memory tables by
  /// this index (see ExecState and the bytecode decoder).
  unsigned getGlobalIndex() const { return GlobalIndex; }
  void setGlobalIndex(unsigned I) { GlobalIndex = I; }

  bool hasScalarInit() const { return HasInit; }
  double getScalarInit() const { return ScalarInit; }
  void setScalarInit(double V) {
    HasInit = true;
    ScalarInit = V;
  }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::GlobalVariable;
  }

private:
  Type *ObjectTy;
  unsigned GlobalIndex = 0;
  bool HasInit = false;
  double ScalarInit = 0.0;
};

} // namespace psc

#endif // PSPDG_IR_VALUE_H
