//===- BasicBlock.cpp -----------------------------------------*- C++ -*-===//

#include "ir/BasicBlock.h"

#include "ir/Function.h"

#include <cassert>

using namespace psc;

Instruction *BasicBlock::append(std::unique_ptr<Instruction> I) {
  assert(!hasTerminator() && "appending to a terminated block");
  I->setParent(this);
  Instructions.push_back(std::move(I));
  return Instructions.back().get();
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  Instruction *Term = getTerminator();
  if (!Term)
    return {};
  if (auto *Br = dyn_cast<BranchInst>(Term))
    return {Br->getTarget()};
  if (auto *CBr = dyn_cast<CondBranchInst>(Term))
    return {CBr->getTrueTarget(), CBr->getFalseTarget()};
  return {};
}
