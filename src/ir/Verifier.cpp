//===- Verifier.cpp -------------------------------------------*- C++ -*-===//

#include "ir/Verifier.h"

#include "ir/Module.h"

#include <set>
#include <sstream>

using namespace psc;

namespace {

class VerifierImpl {
public:
  explicit VerifierImpl(const Module &M) : M(M) {}

  std::vector<std::string> run() {
    for (auto &F : M.functions())
      verifyFunction(*F);
    verifyParallelInfo();
    return std::move(Errors);
  }

private:
  void error(const std::string &Where, const std::string &What) {
    Errors.push_back(Where + ": " + What);
  }

  void verifyFunction(const Function &F) {
    if (F.isDeclaration())
      return;
    std::string Where = "function '" + F.getName() + "'";

    // Collect values visible in this function for operand scoping checks.
    std::set<const Value *> Visible;
    for (unsigned I = 0; I < F.getNumArgs(); ++I)
      Visible.insert(F.getArg(I));
    for (BasicBlock *BB : F)
      for (Instruction *I : *BB)
        Visible.insert(I);

    for (BasicBlock *BB : F) {
      if (!BB->hasTerminator()) {
        error(Where, "block '" + BB->getName() + "' has no terminator");
        continue;
      }
      unsigned Pos = 0, Size = static_cast<unsigned>(BB->size());
      for (Instruction *I : *BB) {
        ++Pos;
        if (I->isTerminator() && Pos != Size)
          error(Where, "terminator in the middle of block '" + BB->getName() +
                           "'");
        verifyInstruction(F, *BB, *I, Visible, Where);
      }
    }
  }

  void verifyInstruction(const Function &F, const BasicBlock &,
                         const Instruction &I,
                         const std::set<const Value *> &Visible,
                         const std::string &Where) {
    // Operand scoping: instruction/argument operands must belong to F.
    for (Value *Op : I.operands()) {
      if (isa<ConstantInt>(Op) || isa<ConstantFloat>(Op) ||
          isa<GlobalVariable>(Op) || isa<Function>(Op))
        continue;
      if (!Visible.count(Op))
        error(Where, "operand of a '" + std::string(I.getOpcodeName()) +
                         "' does not belong to the function");
    }

    switch (I.getKind()) {
    case Value::ValueKind::Load: {
      const auto *LI = cast<LoadInst>(&I);
      if (!LI->getPointer()->getType()->isPointer())
        error(Where, "load from non-pointer");
      break;
    }
    case Value::ValueKind::Store: {
      const auto *SI = cast<StoreInst>(&I);
      if (!SI->getPointer()->getType()->isPointer())
        error(Where, "store to non-pointer");
      else if (cast<PointerType>(SI->getPointer()->getType())->getPointee() !=
               SI->getStoredValue()->getType())
        error(Where, "store value/pointee type mismatch");
      break;
    }
    case Value::ValueKind::GEP: {
      const auto *GI = cast<GEPInst>(&I);
      if (!GI->getBase()->getType()->isPointer())
        error(Where, "gep base is not a pointer");
      if (!GI->getIndex()->getType()->isInt())
        error(Where, "gep index is not an integer");
      break;
    }
    case Value::ValueKind::Binary: {
      const auto *BI = cast<BinaryInst>(&I);
      if (BI->getLHS()->getType() != BI->getRHS()->getType())
        error(Where, "binary operand type mismatch");
      if (!BI->getType()->isScalar())
        error(Where, "binary result is not scalar");
      break;
    }
    case Value::ValueKind::Cmp: {
      const auto *CI = cast<CmpInst>(&I);
      if (CI->getLHS()->getType() != CI->getRHS()->getType())
        error(Where, "cmp operand type mismatch");
      break;
    }
    case Value::ValueKind::CondBr:
      if (!cast<CondBranchInst>(&I)->getCondition()->getType()->isInt())
        error(Where, "condbr condition is not i64");
      break;
    case Value::ValueKind::Ret: {
      const auto *RI = cast<ReturnInst>(&I);
      if (RI->hasReturnValue()) {
        if (F.getReturnType()->isVoid())
          error(Where, "value returned from void function");
        else if (RI->getReturnValue()->getType() != F.getReturnType())
          error(Where, "return type mismatch");
      } else if (!F.getReturnType()->isVoid()) {
        error(Where, "missing return value");
      }
      break;
    }
    case Value::ValueKind::Call: {
      const auto *CI = cast<CallInst>(&I);
      const Function *Callee = CI->getCallee();
      if (!Callee) {
        error(Where, "call with null callee");
        break;
      }
      FunctionType *FT = Callee->getFunctionType();
      if (CI->getNumArgs() != FT->getNumParams()) {
        error(Where, "call to '" + Callee->getName() + "' arity mismatch");
        break;
      }
      for (unsigned A = 0; A < CI->getNumArgs(); ++A)
        if (CI->getArg(A)->getType() != FT->getParams()[A])
          error(Where,
                "call to '" + Callee->getName() + "' arg type mismatch");
      break;
    }
    default:
      break;
    }
  }

  void verifyParallelInfo() {
    const ParallelInfo &PI = M.getParallelInfo();
    for (const Directive &D : PI.directives()) {
      std::ostringstream W;
      W << "directive #" << D.Id;
      if (D.isLoopDirective() && !D.LoopHeader)
        error(W.str(), "loop directive without a loop header");
      for (const VarRef &V : D.Privates)
        if (!V.Storage)
          error(W.str(), "unresolved private variable '" + V.Name + "'");
      for (const ReductionClause &R : D.Reductions) {
        if (!R.Var.Storage)
          error(W.str(), "unresolved reduction variable '" + R.Var.Name + "'");
        if (R.Op == ReduceOp::Custom && !R.CustomReducer)
          error(W.str(), "custom reduction without reducer function");
      }
      for (const LiveOutClause &L : D.LiveOuts)
        if (!L.Var.Storage)
          error(W.str(), "unresolved live-out variable '" + L.Var.Name + "'");
    }
  }

  const Module &M;
  std::vector<std::string> Errors;
};

} // namespace

std::vector<std::string> psc::verifyModule(const Module &M) {
  return VerifierImpl(M).run();
}

bool psc::isModuleValid(const Module &M) { return verifyModule(M).empty(); }
