//===- Dominators.cpp -----------------------------------------*- C++ -*-===//

#include "ir/Dominators.h"

#include <algorithm>
#include <cassert>

using namespace psc;

namespace {

/// Graph view used by the solver: either the CFG as-is or its reverse with a
/// virtual exit appended.
struct GraphView {
  unsigned NumNodes = 0;
  unsigned Root = 0;
  std::vector<std::vector<unsigned>> Preds;
  std::vector<unsigned> RPO; // of the (possibly reversed) graph
};

GraphView makeForwardView(const CFG &G) {
  GraphView V;
  V.NumNodes = G.size();
  V.Root = 0;
  V.Preds.resize(V.NumNodes);
  for (unsigned B = 0; B < V.NumNodes; ++B)
    V.Preds[B] = G.predecessors(B);
  V.RPO = G.reversePostOrder();
  return V;
}

GraphView makeReverseView(const CFG &G) {
  GraphView V;
  unsigned N = G.size();
  V.NumNodes = N + 1; // + virtual exit
  V.Root = N;
  V.Preds.resize(V.NumNodes);

  // Reverse edges: pred in reverse graph = succ in forward graph.
  for (unsigned B = 0; B < N; ++B)
    V.Preds[B] = G.successors(B);
  // Exit blocks (no successors) are predecessors of the virtual exit in the
  // forward sense, i.e. the virtual exit's reverse-graph successors; in the
  // reverse graph each exit block has the virtual exit as predecessor.
  std::vector<unsigned> Exits;
  for (unsigned B = 0; B < N; ++B)
    if (G.successors(B).empty() && G.isReachable(B))
      Exits.push_back(B);
  for (unsigned E : Exits)
    V.Preds[E].push_back(V.Root);

  // RPO of the reverse graph: DFS from the virtual exit along reverse edges
  // (i.e. along forward predecessors).
  std::vector<bool> Visited(V.NumNodes, false);
  std::vector<unsigned> PostOrder;
  std::vector<std::pair<unsigned, size_t>> Stack;
  auto ReverseSuccs = [&](unsigned Node) -> std::vector<unsigned> {
    if (Node == V.Root)
      return Exits;
    return G.predecessors(Node);
  };
  Visited[V.Root] = true;
  Stack.push_back({V.Root, 0});
  std::vector<std::vector<unsigned>> SuccCache(V.NumNodes);
  SuccCache[V.Root] = ReverseSuccs(V.Root);
  while (!Stack.empty()) {
    auto &[Node, Pos] = Stack.back();
    auto &Succs = SuccCache[Node];
    if (Pos < Succs.size()) {
      unsigned Next = Succs[Pos++];
      if (!Visited[Next]) {
        Visited[Next] = true;
        SuccCache[Next] = ReverseSuccs(Next);
        Stack.push_back({Next, 0});
      }
      continue;
    }
    PostOrder.push_back(Node);
    Stack.pop_back();
  }
  V.RPO.assign(PostOrder.rbegin(), PostOrder.rend());
  return V;
}

/// Cooper–Harvey–Kennedy "engineered" iterative dominator algorithm.
std::vector<unsigned> solveIDoms(const GraphView &V) {
  constexpr unsigned None = DominatorTree::None;
  std::vector<unsigned> IDom(V.NumNodes, None);
  std::vector<unsigned> RPONumber(V.NumNodes, None);
  for (unsigned I = 0; I < V.RPO.size(); ++I)
    RPONumber[V.RPO[I]] = I;

  auto Intersect = [&](unsigned A, unsigned B) {
    while (A != B) {
      while (RPONumber[A] > RPONumber[B])
        A = IDom[A];
      while (RPONumber[B] > RPONumber[A])
        B = IDom[B];
    }
    return A;
  };

  IDom[V.Root] = V.Root;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned Node : V.RPO) {
      if (Node == V.Root)
        continue;
      unsigned NewIDom = None;
      for (unsigned P : V.Preds[Node]) {
        if (RPONumber[P] == None || IDom[P] == None)
          continue; // unreachable or unprocessed
        NewIDom = NewIDom == None ? P : Intersect(P, NewIDom);
      }
      if (NewIDom != None && IDom[Node] != NewIDom) {
        IDom[Node] = NewIDom;
        Changed = true;
      }
    }
  }
  IDom[V.Root] = None; // root has no idom
  return IDom;
}

std::vector<std::vector<unsigned>>
computeFrontiers(const GraphView &V, const std::vector<unsigned> &IDom) {
  constexpr unsigned None = DominatorTree::None;
  std::vector<std::vector<unsigned>> DF(V.NumNodes);
  for (unsigned Node = 0; Node < V.NumNodes; ++Node) {
    if (V.Preds[Node].size() < 2)
      continue;
    for (unsigned P : V.Preds[Node]) {
      unsigned Runner = P;
      while (Runner != None && Runner != IDom[Node]) {
        if (std::find(DF[Runner].begin(), DF[Runner].end(), Node) ==
            DF[Runner].end())
          DF[Runner].push_back(Node);
        Runner = IDom[Runner];
      }
    }
  }
  return DF;
}

} // namespace

DominatorTree::DominatorTree(const CFG &G, bool Post) {
  GraphView V = Post ? makeReverseView(G) : makeForwardView(G);
  if (Post)
    VirtualExit = G.size();
  IDom = solveIDoms(V);
  Frontier = computeFrontiers(V, IDom);
}

bool DominatorTree::dominates(unsigned A, unsigned B) const {
  assert(A < IDom.size() && B < IDom.size() && "block index out of range");
  unsigned Runner = B;
  while (Runner != None) {
    if (Runner == A)
      return true;
    Runner = IDom[Runner];
  }
  return false;
}
