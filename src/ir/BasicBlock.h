//===- BasicBlock.h - Straight-line instruction container ------*- C++ -*-===//
///
/// \file
/// A BasicBlock owns a sequence of instructions ending in exactly one
/// terminator. Blocks are identified by a stable per-function index used by
/// the CFG, dominator, and loop analyses.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_IR_BASICBLOCK_H
#define PSPDG_IR_BASICBLOCK_H

#include "ir/Instructions.h"

#include <memory>
#include <string>
#include <vector>

namespace psc {

class Function;

/// A maximal straight-line code sequence with a single terminator.
class BasicBlock {
public:
  BasicBlock(Function *Parent, std::string BlockName, unsigned Index)
      : Parent(Parent), Name(std::move(BlockName)), Index(Index) {}

  Function *getParent() const { return Parent; }
  const std::string &getName() const { return Name; }
  unsigned getIndex() const { return Index; }
  void setIndex(unsigned I) { Index = I; }

  /// Appends \p I and takes ownership. The block must not already have a
  /// terminator.
  Instruction *append(std::unique_ptr<Instruction> I);

  bool empty() const { return Instructions.empty(); }
  size_t size() const { return Instructions.size(); }

  Instruction *front() const { return Instructions.front().get(); }
  Instruction *back() const { return Instructions.back().get(); }

  /// Returns the terminator, or null if the block is still being built.
  Instruction *getTerminator() const {
    if (Instructions.empty() || !Instructions.back()->isTerminator())
      return nullptr;
    return Instructions.back().get();
  }

  bool hasTerminator() const { return getTerminator() != nullptr; }

  /// Successor blocks (0 for Ret, 1 for Br, 2 for CondBr).
  std::vector<BasicBlock *> successors() const;

  // Iteration over instructions (as raw pointers).
  class iterator {
  public:
    using Inner = std::vector<std::unique_ptr<Instruction>>::const_iterator;
    explicit iterator(Inner It) : It(It) {}
    Instruction *operator*() const { return It->get(); }
    iterator &operator++() {
      ++It;
      return *this;
    }
    bool operator!=(const iterator &O) const { return It != O.It; }
    bool operator==(const iterator &O) const { return It == O.It; }

  private:
    Inner It;
  };

  iterator begin() const { return iterator(Instructions.begin()); }
  iterator end() const { return iterator(Instructions.end()); }

private:
  Function *Parent;
  std::string Name;
  unsigned Index;
  std::vector<std::unique_ptr<Instruction>> Instructions;
};

} // namespace psc

#endif // PSPDG_IR_BASICBLOCK_H
