//===- Instructions.cpp ---------------------------------------*- C++ -*-===//

#include "ir/Instructions.h"

#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "support/ErrorHandling.h"

using namespace psc;

CallInst::CallInst(Type *RetTy, Function *Callee, std::vector<Value *> Args)
    : Instruction(ValueKind::Call, RetTy), Callee(Callee) {
  for (Value *A : Args)
    addOperand(A);
}

bool Instruction::mayAccessMemory() const {
  switch (getKind()) {
  case ValueKind::Load:
  case ValueKind::Store:
    return true;
  case ValueKind::Call: {
    const auto *CI = cast<CallInst>(this);
    const Function *Callee = CI->getCallee();
    // Declared built-ins are pure except 'print' (externally visible
    // output); defined functions may touch any memory.
    if (!Callee->isDeclaration())
      return true;
    const std::string &N = Callee->getName();
    return N == intrinsics::Print || N == intrinsics::PrintF;
  }
  default:
    return false;
  }
}

const char *Instruction::getOpcodeName() const {
  switch (getKind()) {
  case ValueKind::Alloca:
    return "alloca";
  case ValueKind::Load:
    return "load";
  case ValueKind::Store:
    return "store";
  case ValueKind::GEP:
    return "gep";
  case ValueKind::Binary:
    return BinaryInst::getBinOpName(cast<BinaryInst>(this)->getBinOp());
  case ValueKind::Unary:
    return cast<UnaryInst>(this)->getUnOp() == UnaryInst::UnOp::Neg ? "neg"
                                                                    : "not";
  case ValueKind::Cmp:
    return "cmp";
  case ValueKind::Cast:
    return cast<CastInst>(this)->getCastOp() == CastInst::CastOp::IntToFloat
               ? "sitofp"
               : "fptosi";
  case ValueKind::Br:
    return "br";
  case ValueKind::CondBr:
    return "condbr";
  case ValueKind::Ret:
    return "ret";
  case ValueKind::Call:
    return "call";
  default:
    psc_unreachable("not an instruction kind");
  }
}

const char *BinaryInst::getBinOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "add";
  case BinOp::Sub:
    return "sub";
  case BinOp::Mul:
    return "mul";
  case BinOp::Div:
    return "div";
  case BinOp::Rem:
    return "rem";
  case BinOp::And:
    return "and";
  case BinOp::Or:
    return "or";
  case BinOp::Xor:
    return "xor";
  case BinOp::Shl:
    return "shl";
  case BinOp::Shr:
    return "shr";
  }
  psc_unreachable("invalid binop");
}

const char *CmpInst::getPredicateName(Predicate Pred) {
  switch (Pred) {
  case Predicate::EQ:
    return "eq";
  case Predicate::NE:
    return "ne";
  case Predicate::LT:
    return "lt";
  case Predicate::LE:
    return "le";
  case Predicate::GT:
    return "gt";
  case Predicate::GE:
    return "ge";
  }
  psc_unreachable("invalid predicate");
}
