//===- ParallelInfo.h - Explicit-parallelism annotations on the IR -------===//
///
/// \file
/// Side-table carrying the programmer's explicit parallel semantics from the
/// PSC front-end to the PS-PDG builder (paper Fig. 12: "IR with metadata").
/// Directives are either *loop directives* (attached to a loop header block)
/// or *region directives* (delimited in the instruction stream by calls to
/// the marker intrinsics __psc_region_begin(id) / __psc_region_end(id)).
///
/// The PDG-based baselines ignore this table entirely; the J&K baseline
/// (Jensen & Karlsson, TACO'17) consumes only the worksharing-loop
/// directives; the PS-PDG builder consumes everything.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_IR_PARALLELINFO_H
#define PSPDG_IR_PARALLELINFO_H

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace psc {

class BasicBlock;
class Function;
class Value;

/// Directive kinds, mirroring the PSC pragma surface (an OpenMP-style
/// model; see DESIGN.md §2 for the OpenMP→PSC mapping).
enum class DirectiveKind {
  Parallel,    ///< `parallel` region: spawn a team of threads.
  ParallelFor, ///< `parallel for`: combined spawn + worksharing loop.
  For,         ///< `for`: worksharing loop inside a parallel region.
  Critical,    ///< `critical [(name)]`: mutual exclusion, orderless.
  Atomic,      ///< `atomic`: atomic update region.
  Single,      ///< `single`: executed by one iteration/thread per context.
  Master,      ///< `master`: executed by the master thread only.
  Ordered,     ///< `ordered`: executed in loop-iteration order.
  Barrier,     ///< `barrier`: synchronization point.
  Task,        ///< `spawn f(...)`: Cilk-style spawned call (Appendix A).
  TaskWait     ///< `sync`: join all tasks spawned in the enclosing scope.
};

/// Reduction operators supported by the `reduction(op: var)` clause.
/// Custom is the PSC extension `reducible(var : combineFn)` that carries an
/// application-specific reducer function (paper Fig. 10 / Fig. 11-E).
enum class ReduceOp { Add, Mul, Min, Max, Custom };

/// A source variable named in a clause, resolved to its storage (an
/// AllocaInst or GlobalVariable).
struct VarRef {
  std::string Name;
  Value *Storage = nullptr;
};

/// One reduction clause entry.
struct ReductionClause {
  VarRef Var;
  ReduceOp Op = ReduceOp::Add;
  /// Reducer function for ReduceOp::Custom (takes two copies, merges into
  /// the first) — the PS-PDG variable's "merge node" (paper §3.6).
  Function *CustomReducer = nullptr;
};

/// Live-out propagation policy requested for a variable (maps onto the
/// PS-PDG data-selectors, paper §3.5).
enum class LiveOutPolicy {
  Last, ///< lastprivate: last iteration's value propagates (Last-Producer).
  Any,  ///< relaxed(x): any iteration's value may propagate (Any-Producer).
  First ///< firstprivate: pre-loop value broadcast in (All-Consumers).
};

struct LiveOutClause {
  VarRef Var;
  LiveOutPolicy Policy = LiveOutPolicy::Last;
};

/// One parsed directive.
struct Directive {
  unsigned Id = 0;
  DirectiveKind Kind = DirectiveKind::Parallel;
  std::string CriticalName; ///< For Critical; empty = unnamed.

  std::vector<VarRef> Privates;
  std::vector<ReductionClause> Reductions;
  std::vector<LiveOutClause> LiveOuts; ///< first/lastprivate, relaxed.
  bool NoWait = false;
  bool HasOrderedClause = false; ///< `ordered` clause on a loop directive.
  long ChunkSize = 0;            ///< schedule(static, N); 0 = default.

  /// For loop directives: the header block of the annotated loop.
  BasicBlock *LoopHeader = nullptr;

  bool isLoopDirective() const {
    return Kind == DirectiveKind::ParallelFor || Kind == DirectiveKind::For;
  }
  bool isRegionDirective() const {
    return !isLoopDirective() && Kind != DirectiveKind::Barrier &&
           Kind != DirectiveKind::TaskWait;
  }
};

/// Canonical-loop metadata recorded by the front-end for every `for`
/// statement: the induction variable's storage, constant step, and whether
/// the loop is in canonical form (i = init; i REL bound; i += step). This is
/// the moral equivalent of LLVM loop metadata + SCEV's canonical IV and is
/// what the affine dependence tests key on.
struct ForLoopMeta {
  BasicBlock *Header = nullptr;
  Value *CounterStorage = nullptr; ///< Alloca/global holding the IV.
  long Step = 1;
  bool Canonical = false;

  /// Constant bounds when the source used literals; enables exact IV ranges
  /// for the Banerjee-style dependence test and static trip counts.
  bool HasConstInit = false;
  long InitVal = 0;
  bool HasConstBound = false;
  long BoundVal = 0;
  /// Comparison in the loop guard: 0 '<', 1 '<=', 2 '>', 3 '>=', 4 '!='.
  int RelKind = 0;

  /// Static trip count if fully constant; -1 if unknown.
  long tripCount() const {
    if (!Canonical || !HasConstInit || !HasConstBound || Step == 0)
      return -1;
    long Lo = InitVal, Hi = BoundVal;
    switch (RelKind) {
    case 0: // <
      return Step > 0 && Hi > Lo ? (Hi - Lo + Step - 1) / Step : 0;
    case 1: // <=
      return Step > 0 && Hi >= Lo ? (Hi - Lo + Step) / Step : 0;
    case 2: // >
      return Step < 0 && Lo > Hi ? (Lo - Hi + (-Step) - 1) / (-Step) : 0;
    case 3: // >=
      return Step < 0 && Lo >= Hi ? (Lo - Hi + (-Step)) / (-Step) : 0;
    default:
      return -1;
    }
  }

  /// Inclusive range [Min, Max] of IV values, valid when tripCount() > 0.
  bool ivRange(long &Min, long &Max) const {
    long Trip = tripCount();
    if (Trip <= 0)
      return false;
    long First = InitVal, Last = InitVal + (Trip - 1) * Step;
    Min = std::min(First, Last);
    Max = std::max(First, Last);
    return true;
  }
};

/// Per-module table of directives and loop metadata.
class ParallelInfo {
public:
  /// Registers a directive and returns its id.
  unsigned addDirective(Directive D) {
    D.Id = static_cast<unsigned>(Directives.size());
    Directives.push_back(std::move(D));
    return Directives.back().Id;
  }

  const std::vector<Directive> &directives() const { return Directives; }
  std::vector<Directive> &directives() { return Directives; }

  const Directive *getDirective(unsigned Id) const {
    return Id < Directives.size() ? &Directives[Id] : nullptr;
  }

  /// Loop directives attached to a given loop header, in source order.
  std::vector<const Directive *> directivesForLoop(BasicBlock *Header) const {
    std::vector<const Directive *> Out;
    for (const Directive &D : Directives)
      if (D.isLoopDirective() && D.LoopHeader == Header)
        Out.push_back(&D);
    return Out;
  }

  void addForLoopMeta(ForLoopMeta M) { ForLoops[M.Header] = M; }
  const ForLoopMeta *getForLoopMeta(BasicBlock *Header) const {
    auto It = ForLoops.find(Header);
    return It == ForLoops.end() ? nullptr : &It->second;
  }

  /// threadprivate(x): x is privatized per thread for the whole program.
  void addThreadPrivate(VarRef V) { ThreadPrivates.push_back(std::move(V)); }
  const std::vector<VarRef> &threadPrivates() const { return ThreadPrivates; }

  bool isThreadPrivate(const Value *Storage) const {
    for (const VarRef &V : ThreadPrivates)
      if (V.Storage == Storage)
        return true;
    return false;
  }

private:
  std::vector<Directive> Directives;
  std::map<BasicBlock *, ForLoopMeta> ForLoops;
  std::vector<VarRef> ThreadPrivates;
};

} // namespace psc

#endif // PSPDG_IR_PARALLELINFO_H
