//===- Type.h - Type system of the PSC IR ----------------------*- C++ -*-===//
///
/// \file
/// Types for the PSC intermediate representation. The type system is
/// deliberately small — the PS-PDG construction only needs enough typing to
/// distinguish scalars from memory objects:
///
///   * VoidTy            — function results only
///   * IntTy             — 64-bit signed integer (also used for booleans)
///   * FloatTy           — IEEE double
///   * PointerType(T)    — pointer to T (produced by allocas, globals, GEPs)
///   * ArrayType(T, N)   — N contiguous elements of scalar type T
///   * FunctionType      — return type + parameter types
///
/// Types are uniqued and owned by a TypeContext (one per Module), so type
/// equality is pointer equality.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_IR_TYPE_H
#define PSPDG_IR_TYPE_H

#include "support/Casting.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace psc {

class TypeContext;

/// Base class of all IR types. Subclasses add structure (pointee, element
/// count, parameters); the scalar types are kind-only singletons.
class Type {
public:
  enum class TypeKind { Void, Int, Float, Pointer, Array, Function };

  explicit Type(TypeKind K) : Kind(K) {}
  virtual ~Type() = default;

  TypeKind getKind() const { return Kind; }

  bool isVoid() const { return Kind == TypeKind::Void; }
  bool isInt() const { return Kind == TypeKind::Int; }
  bool isFloat() const { return Kind == TypeKind::Float; }
  bool isPointer() const { return Kind == TypeKind::Pointer; }
  bool isArray() const { return Kind == TypeKind::Array; }
  bool isFunction() const { return Kind == TypeKind::Function; }
  bool isScalar() const { return isInt() || isFloat(); }

  /// Renders the type in IR syntax ("i64", "f64", "ptr<f64>", "[8 x i64]").
  std::string str() const;

private:
  TypeKind Kind;
};

/// Pointer to a pointee type. All memory-access instructions operate on
/// pointer-typed values.
class PointerType : public Type {
public:
  explicit PointerType(Type *Pointee)
      : Type(TypeKind::Pointer), Pointee(Pointee) {}

  Type *getPointee() const { return Pointee; }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Pointer;
  }

private:
  Type *Pointee;
};

/// Fixed-size one-dimensional array of scalars. Multi-dimensional source
/// arrays are flattened by the front-end, matching how the NAS kernels are
/// analyzed (affine index expressions over a single linearized subscript).
class ArrayType : public Type {
public:
  ArrayType(Type *Element, uint64_t NumElements)
      : Type(TypeKind::Array), Element(Element), NumElements(NumElements) {}

  Type *getElement() const { return Element; }
  uint64_t getNumElements() const { return NumElements; }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Array;
  }

private:
  Type *Element;
  uint64_t NumElements;
};

/// Function signature: return type and parameter types.
class FunctionType : public Type {
public:
  FunctionType(Type *Ret, std::vector<Type *> Params)
      : Type(TypeKind::Function), Ret(Ret), Params(std::move(Params)) {}

  Type *getReturnType() const { return Ret; }
  const std::vector<Type *> &getParams() const { return Params; }
  unsigned getNumParams() const { return static_cast<unsigned>(Params.size()); }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Function;
  }

private:
  Type *Ret;
  std::vector<Type *> Params;
};

/// Owns and uniques all types of a Module. Pointer equality on Type* is
/// type equality.
class TypeContext {
public:
  TypeContext();

  Type *getVoidTy() { return VoidTy.get(); }
  Type *getIntTy() { return IntTy.get(); }
  Type *getFloatTy() { return FloatTy.get(); }

  PointerType *getPointerTy(Type *Pointee);
  ArrayType *getArrayTy(Type *Element, uint64_t NumElements);
  FunctionType *getFunctionTy(Type *Ret, std::vector<Type *> Params);

private:
  std::unique_ptr<Type> VoidTy, IntTy, FloatTy;
  std::vector<std::unique_ptr<PointerType>> PointerTypes;
  std::vector<std::unique_ptr<ArrayType>> ArrayTypes;
  std::vector<std::unique_ptr<FunctionType>> FunctionTypes;
};

} // namespace psc

#endif // PSPDG_IR_TYPE_H
