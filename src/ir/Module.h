//===- Module.h - Top-level IR container ------------------------*- C++ -*-===//
///
/// \file
/// A Module owns functions, global variables, the type context, uniqued
/// constants, and the ParallelInfo side-table. It also assigns the stable
/// value ids used for deterministic graph construction and printing.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_IR_MODULE_H
#define PSPDG_IR_MODULE_H

#include "ir/Function.h"
#include "ir/ParallelInfo.h"
#include "ir/Type.h"
#include "ir/Value.h"

#include <memory>
#include <string>
#include <vector>

namespace psc {

/// Names of the runtime built-ins the front-end may reference. The emulator
/// implements their dynamic semantics; dependence analysis knows which of
/// them access memory (none do, except print's externally-visible output).
namespace intrinsics {
inline constexpr const char *RegionBegin = "__psc_region_begin";
inline constexpr const char *RegionEnd = "__psc_region_end";
inline constexpr const char *BarrierMarker = "__psc_barrier";
inline constexpr const char *TaskWaitMarker = "__psc_taskwait";
inline constexpr const char *Print = "print";
inline constexpr const char *PrintF = "printf64";
inline constexpr const char *Sqrt = "sqrt";
inline constexpr const char *Fabs = "fabs";
inline constexpr const char *Sin = "sin";
inline constexpr const char *Cos = "cos";
inline constexpr const char *Exp = "exp";
inline constexpr const char *Log = "log";
inline constexpr const char *Pow = "pow";
inline constexpr const char *IMin = "imin";
inline constexpr const char *IMax = "imax";
inline constexpr const char *FMin = "fmin";
inline constexpr const char *FMax = "fmax";
inline constexpr const char *Lcg = "lcg";
} // namespace intrinsics

/// Top-level container for one translation unit.
class Module {
public:
  explicit Module(std::string ModuleName) : Name(std::move(ModuleName)) {}

  const std::string &getName() const { return Name; }

  TypeContext &getTypes() { return Types; }
  const TypeContext &getTypes() const { return Types; }

  ParallelInfo &getParallelInfo() { return PI; }
  const ParallelInfo &getParallelInfo() const { return PI; }

  /// Assigns the next stable value id. Called for every created value.
  uint64_t takeNextValueId() { return NextValueId++; }

  // --- Functions ---------------------------------------------------------

  /// Creates a function (definition once blocks are added, declaration
  /// otherwise). Function names must be unique.
  Function *createFunction(const std::string &FuncName, Type *RetTy,
                           const std::vector<Type *> &ParamTys,
                           const std::vector<std::string> &ParamNames);

  Function *getFunction(const std::string &FuncName) const;
  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }

  /// Returns (creating on first use) the declaration of a runtime built-in.
  Function *getOrCreateIntrinsic(const std::string &IntrinsicName);

  /// True if \p FuncName names a runtime built-in.
  static bool isIntrinsicName(const std::string &FuncName);

  /// True if \p FuncName is one of the region/barrier marker intrinsics
  /// (pure annotations: no data semantics).
  static bool isMarkerIntrinsicName(const std::string &FuncName);

  // --- Globals ------------------------------------------------------------

  GlobalVariable *createGlobal(const std::string &VarName, Type *ObjectTy);
  GlobalVariable *getGlobal(const std::string &VarName) const;
  const std::vector<std::unique_ptr<GlobalVariable>> &globals() const {
    return Globals;
  }

  // --- Constants (uniqued) -------------------------------------------------

  ConstantInt *getConstantInt(int64_t V);
  ConstantFloat *getConstantFloat(double V);

  /// Renders the whole module in textual IR.
  std::string str() const;

private:
  std::string Name;
  TypeContext Types;
  ParallelInfo PI;
  uint64_t NextValueId = 1;

  std::vector<std::unique_ptr<Function>> Functions;
  std::vector<std::unique_ptr<GlobalVariable>> Globals;
  std::vector<std::unique_ptr<ConstantInt>> IntConstants;
  std::vector<std::unique_ptr<ConstantFloat>> FloatConstants;
};

} // namespace psc

#endif // PSPDG_IR_MODULE_H
