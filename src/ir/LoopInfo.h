//===- LoopInfo.h - Natural-loop analysis -----------------------*- C++ -*-===//
///
/// \file
/// Identifies natural loops from dominator-backedges and organizes them in a
/// nesting forest. Loops are the unit of parallelization for the DOALL /
/// HELIX / DSWP planners and the hierarchical-node / context anchors of the
/// PS-PDG.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_IR_LOOPINFO_H
#define PSPDG_IR_LOOPINFO_H

#include "ir/CFG.h"
#include "ir/Dominators.h"

#include <memory>
#include <vector>

namespace psc {

class Function;

/// One natural loop: a header plus the set of blocks that can reach a latch
/// without leaving the header's dominance region.
class Loop {
public:
  Loop(unsigned Header, unsigned Depth) : Header(Header), Depth(Depth) {}

  unsigned getHeader() const { return Header; }
  unsigned getDepth() const { return Depth; } ///< 1 = outermost.

  Loop *getParent() const { return Parent; }
  const std::vector<Loop *> &subLoops() const { return SubLoops; }

  /// All blocks of the loop including sub-loop blocks, sorted ascending.
  const std::vector<unsigned> &blocks() const { return Blocks; }
  bool contains(unsigned Block) const;

  /// Latch blocks (sources of back edges to the header).
  const std::vector<unsigned> &latches() const { return Latches; }

  /// True if \p Other is this loop or nested (transitively) inside it.
  bool encloses(const Loop *Other) const;

private:
  friend class LoopInfo;
  unsigned Header;
  unsigned Depth;
  Loop *Parent = nullptr;
  std::vector<Loop *> SubLoops;
  std::vector<unsigned> Blocks;
  std::vector<unsigned> Latches;
};

/// Loop nesting forest for one function.
class LoopInfo {
public:
  LoopInfo(const Function &F, const CFG &G, const DominatorTree &DT);

  /// All loops, outermost-first within each nest, in header order.
  const std::vector<Loop *> &loops() const { return AllLoops; }

  /// Top-level (depth-1) loops.
  const std::vector<Loop *> &topLevelLoops() const { return TopLoops; }

  /// Innermost loop containing \p Block, or null.
  Loop *getLoopFor(unsigned Block) const {
    return Block < BlockToLoop.size() ? BlockToLoop[Block] : nullptr;
  }

  /// Loop whose header is \p Header, or null.
  Loop *getLoopByHeader(unsigned Header) const;

private:
  std::vector<std::unique_ptr<Loop>> Storage;
  std::vector<Loop *> AllLoops;
  std::vector<Loop *> TopLoops;
  std::vector<Loop *> BlockToLoop;
};

} // namespace psc

#endif // PSPDG_IR_LOOPINFO_H
