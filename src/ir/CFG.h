//===- CFG.h - Control-flow-graph utilities ---------------------*- C++ -*-===//
///
/// \file
/// Predecessor maps, reverse post-order, and reachability over a Function's
/// CFG. These are the building blocks for the dominator and loop analyses.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_IR_CFG_H
#define PSPDG_IR_CFG_H

#include "ir/Function.h"

#include <vector>

namespace psc {

/// Immutable snapshot of a function's CFG structure, indexed by block index.
class CFG {
public:
  explicit CFG(const Function &F);

  unsigned size() const { return static_cast<unsigned>(Succs.size()); }

  const std::vector<unsigned> &successors(unsigned Block) const {
    return Succs[Block];
  }
  const std::vector<unsigned> &predecessors(unsigned Block) const {
    return Preds[Block];
  }

  /// Blocks in reverse post-order of a DFS from the entry. Unreachable
  /// blocks are excluded.
  const std::vector<unsigned> &reversePostOrder() const { return RPO; }

  bool isReachable(unsigned Block) const { return Reachable[Block]; }

private:
  std::vector<std::vector<unsigned>> Succs;
  std::vector<std::vector<unsigned>> Preds;
  std::vector<unsigned> RPO;
  std::vector<bool> Reachable;
};

} // namespace psc

#endif // PSPDG_IR_CFG_H
