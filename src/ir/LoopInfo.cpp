//===- LoopInfo.cpp -------------------------------------------*- C++ -*-===//

#include "ir/LoopInfo.h"

#include "ir/Function.h"

#include <algorithm>
#include <map>

using namespace psc;

bool Loop::contains(unsigned Block) const {
  return std::binary_search(Blocks.begin(), Blocks.end(), Block);
}

bool Loop::encloses(const Loop *Other) const {
  for (const Loop *L = Other; L; L = L->getParent())
    if (L == this)
      return true;
  return false;
}

LoopInfo::LoopInfo(const Function &, const CFG &G, const DominatorTree &DT) {
  unsigned N = G.size();
  BlockToLoop.assign(N, nullptr);

  // 1. Find back edges: S -> H where H dominates S.
  std::map<unsigned, std::vector<unsigned>> HeaderToLatches;
  for (unsigned B = 0; B < N; ++B) {
    if (!G.isReachable(B))
      continue;
    for (unsigned S : G.successors(B))
      if (DT.dominates(S, B))
        HeaderToLatches[S].push_back(B);
  }

  // 2. For each header, collect the natural-loop body by walking CFG
  //    predecessors backwards from the latches.
  struct RawLoop {
    unsigned Header;
    std::vector<unsigned> Latches;
    std::vector<unsigned> Blocks;
  };
  std::vector<RawLoop> Raw;
  for (auto &[Header, Latches] : HeaderToLatches) {
    RawLoop RL;
    RL.Header = Header;
    RL.Latches = Latches;
    std::vector<bool> InLoop(N, false);
    InLoop[Header] = true;
    std::vector<unsigned> Work = Latches;
    for (unsigned L : Latches)
      InLoop[L] = true;
    while (!Work.empty()) {
      unsigned B = Work.back();
      Work.pop_back();
      for (unsigned P : G.predecessors(B))
        if (!InLoop[P] && G.isReachable(P)) {
          InLoop[P] = true;
          Work.push_back(P);
        }
    }
    for (unsigned B = 0; B < N; ++B)
      if (InLoop[B])
        RL.Blocks.push_back(B);
    Raw.push_back(std::move(RL));
  }

  // 3. Build nesting: sort by block-count ascending so inner loops come
  //    first; a loop's parent is the smallest strictly-larger loop that
  //    contains its header.
  std::sort(Raw.begin(), Raw.end(), [](const RawLoop &A, const RawLoop &B) {
    if (A.Blocks.size() != B.Blocks.size())
      return A.Blocks.size() < B.Blocks.size();
    return A.Header < B.Header;
  });

  for (auto &RL : Raw) {
    Storage.push_back(std::make_unique<Loop>(RL.Header, 1));
    Loop *L = Storage.back().get();
    L->Blocks = RL.Blocks;
    L->Latches = RL.Latches;
  }
  // Parent assignment (quadratic in loop count; loop counts are small).
  for (size_t I = 0; I < Storage.size(); ++I) {
    Loop *Inner = Storage[I].get();
    for (size_t J = I + 1; J < Storage.size(); ++J) {
      Loop *Outer = Storage[J].get();
      if (Outer->contains(Inner->getHeader()) &&
          Outer->getHeader() != Inner->getHeader()) {
        Inner->Parent = Outer;
        Outer->SubLoops.push_back(Inner);
        break;
      }
    }
  }
  // Depths.
  for (auto &LPtr : Storage) {
    unsigned D = 1;
    for (Loop *P = LPtr->getParent(); P; P = P->getParent())
      ++D;
    LPtr->Depth = D;
  }
  // Innermost map: iterate loops from outer to inner so inner wins.
  std::vector<Loop *> ByDepth;
  for (auto &LPtr : Storage)
    ByDepth.push_back(LPtr.get());
  std::sort(ByDepth.begin(), ByDepth.end(), [](Loop *A, Loop *B) {
    if (A->getDepth() != B->getDepth())
      return A->getDepth() < B->getDepth();
    return A->getHeader() < B->getHeader();
  });
  for (Loop *L : ByDepth)
    for (unsigned B : L->blocks())
      BlockToLoop[B] = L;

  AllLoops = ByDepth;
  for (Loop *L : AllLoops)
    if (!L->getParent())
      TopLoops.push_back(L);
}

Loop *LoopInfo::getLoopByHeader(unsigned Header) const {
  for (Loop *L : AllLoops)
    if (L->getHeader() == Header)
      return L;
  return nullptr;
}
