//===- CFG.cpp ------------------------------------------------*- C++ -*-===//

#include "ir/CFG.h"

#include <algorithm>

using namespace psc;

CFG::CFG(const Function &F) {
  unsigned N = F.getNumBlocks();
  Succs.resize(N);
  Preds.resize(N);
  Reachable.assign(N, false);

  for (unsigned I = 0; I < N; ++I)
    for (BasicBlock *S : F.getBlock(I)->successors())
      Succs[I].push_back(S->getIndex());
  for (unsigned I = 0; I < N; ++I)
    for (unsigned S : Succs[I])
      Preds[S].push_back(I);

  if (N == 0)
    return;

  // Iterative post-order DFS from the entry block.
  std::vector<unsigned> PostOrder;
  std::vector<std::pair<unsigned, size_t>> Stack;
  Reachable[0] = true;
  Stack.push_back({0, 0});
  while (!Stack.empty()) {
    auto &[Block, Pos] = Stack.back();
    if (Pos < Succs[Block].size()) {
      unsigned Next = Succs[Block][Pos++];
      if (!Reachable[Next]) {
        Reachable[Next] = true;
        Stack.push_back({Next, 0});
      }
      continue;
    }
    PostOrder.push_back(Block);
    Stack.pop_back();
  }
  RPO.assign(PostOrder.rbegin(), PostOrder.rend());
}
