//===- Type.cpp -----------------------------------------------*- C++ -*-===//

#include "ir/Type.h"

#include "support/ErrorHandling.h"

#include <sstream>

using namespace psc;

std::string Type::str() const {
  switch (Kind) {
  case TypeKind::Void:
    return "void";
  case TypeKind::Int:
    return "i64";
  case TypeKind::Float:
    return "f64";
  case TypeKind::Pointer:
    return "ptr<" + cast<PointerType>(this)->getPointee()->str() + ">";
  case TypeKind::Array: {
    const auto *AT = cast<ArrayType>(this);
    std::ostringstream OS;
    OS << "[" << AT->getNumElements() << " x " << AT->getElement()->str()
       << "]";
    return OS.str();
  }
  case TypeKind::Function: {
    const auto *FT = cast<FunctionType>(this);
    std::string S = FT->getReturnType()->str() + " (";
    for (unsigned I = 0; I < FT->getNumParams(); ++I) {
      if (I)
        S += ", ";
      S += FT->getParams()[I]->str();
    }
    return S + ")";
  }
  }
  psc_unreachable("invalid type kind");
}

TypeContext::TypeContext() {
  VoidTy = std::make_unique<Type>(Type::TypeKind::Void);
  IntTy = std::make_unique<Type>(Type::TypeKind::Int);
  FloatTy = std::make_unique<Type>(Type::TypeKind::Float);
}

PointerType *TypeContext::getPointerTy(Type *Pointee) {
  for (auto &PT : PointerTypes)
    if (PT->getPointee() == Pointee)
      return PT.get();
  PointerTypes.push_back(std::make_unique<PointerType>(Pointee));
  return PointerTypes.back().get();
}

ArrayType *TypeContext::getArrayTy(Type *Element, uint64_t NumElements) {
  for (auto &AT : ArrayTypes)
    if (AT->getElement() == Element && AT->getNumElements() == NumElements)
      return AT.get();
  ArrayTypes.push_back(std::make_unique<ArrayType>(Element, NumElements));
  return ArrayTypes.back().get();
}

FunctionType *TypeContext::getFunctionTy(Type *Ret,
                                         std::vector<Type *> Params) {
  for (auto &FT : FunctionTypes)
    if (FT->getReturnType() == Ret && FT->getParams() == Params)
      return FT.get();
  FunctionTypes.push_back(
      std::make_unique<FunctionType>(Ret, std::move(Params)));
  return FunctionTypes.back().get();
}
