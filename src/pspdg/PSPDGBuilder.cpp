//===- PSPDGBuilder.cpp ---------------------------------------*- C++ -*-===//

#include "pspdg/PSPDGBuilder.h"

#include "analysis/MemoryModel.h"
#include "ir/Module.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <map>

using namespace psc;

namespace {

/// A "container": the function, a loop, or a directive region. Containers
/// form the hierarchical-node tree.
struct Container {
  PSRegionKind Kind = PSRegionKind::Function;
  const Loop *L = nullptr;
  const Directive *D = nullptr;
  /// Members as indices into the program-order instruction list.
  std::vector<bool> Members; // sized to #instructions
  unsigned Size = 0;
  PSNodeId Node = NoContext;
};

class BuilderImpl {
public:
  BuilderImpl(const FunctionAnalysis &FA, const std::vector<DepEdge> &Edges,
              const FeatureSet &Features)
      : FA(FA), Edges(Edges), Feats(Features),
        PI(FA.function().getParent()->getParallelInfo()) {}

  std::unique_ptr<PSPDG> run();

private:
  void collectContainers();
  void buildNodes();
  void buildEdges();
  void buildVariables();

  bool isMarker(const Instruction *I) const {
    const auto *CI = dyn_cast<CallInst>(I);
    return CI && Module::isMarkerIntrinsicName(CI->getCallee()->getName());
  }

  /// Directive-derived region container enclosing instruction index \p Idx
  /// (innermost), or -1.
  int regionContainerOf(unsigned Idx) const;

  /// Worksharing directive attached to loop header \p Header, or null.
  const Directive *worksharingDirective(unsigned Header) const;

  /// True if \p Storage is privatizable at the loop with header \p Header
  /// under the declared semantics (clause private / live-out privates /
  /// threadprivate).
  bool isPrivatizableAt(const Value *Storage, unsigned Header) const;

  /// True if \p Storage is a declared reduction object at loop \p Header or
  /// a module-scope reducible.
  bool isReducibleAt(const Value *Storage, unsigned Header) const;

  PSNodeId contextOf(PSNodeId Node) const; ///< Innermost labeled ancestor.

  const FunctionAnalysis &FA;
  const std::vector<DepEdge> &Edges;
  FeatureSet Feats;
  const ParallelInfo &PI;

  std::unique_ptr<PSPDG> G;
  std::vector<Container> Containers; // [0] = function
  std::vector<int> RegionOf;         // per instruction index, or -1
  std::vector<unsigned> TaskWaitIdx; // taskwait markers, program order
};

int BuilderImpl::regionContainerOf(unsigned Idx) const {
  return RegionOf[Idx];
}

const Directive *BuilderImpl::worksharingDirective(unsigned Header) const {
  BasicBlock *HB = FA.function().getBlock(Header);
  for (const Directive *D : PI.directivesForLoop(HB))
    if (D->Kind == DirectiveKind::ParallelFor || D->Kind == DirectiveKind::For)
      return D;
  return nullptr;
}

bool BuilderImpl::isPrivatizableAt(const Value *Storage,
                                   unsigned Header) const {
  if (!Storage)
    return false;
  if (PI.isThreadPrivate(Storage))
    return true;
  const Directive *D = worksharingDirective(Header);
  if (!D)
    return false;
  for (const VarRef &V : D->Privates)
    if (V.Storage == Storage)
      return true;
  for (const LiveOutClause &L : D->LiveOuts)
    if (L.Var.Storage == Storage)
      return true;
  return false;
}

bool BuilderImpl::isReducibleAt(const Value *Storage, unsigned Header) const {
  if (!Storage)
    return false;
  // Module-scope `reducible(var : fn)` declarations.
  for (const Directive &D : PI.directives())
    if (!D.isLoopDirective() && D.Kind == DirectiveKind::Parallel &&
        !D.LoopHeader)
      for (const ReductionClause &R : D.Reductions)
        if (R.Var.Storage == Storage && R.Op == ReduceOp::Custom)
          return true;
  const Directive *D = worksharingDirective(Header);
  if (!D)
    return false;
  for (const ReductionClause &R : D->Reductions)
    if (R.Var.Storage == Storage)
      return true;
  return false;
}

void BuilderImpl::collectContainers() {
  const auto &Insts = FA.instructions();
  unsigned N = static_cast<unsigned>(Insts.size());

  // Function container.
  Container Fn;
  Fn.Kind = PSRegionKind::Function;
  Fn.Members.assign(N, true);
  Fn.Size = N;
  Containers.push_back(std::move(Fn));

  // Loop containers.
  for (const Loop *L : FA.loopInfo().loops()) {
    Container C;
    C.Kind = PSRegionKind::LoopNode;
    C.L = L;
    C.Members.assign(N, false);
    for (unsigned I = 0; I < N; ++I)
      if (L->contains(Insts[I]->getParent()->getIndex())) {
        C.Members[I] = true;
        ++C.Size;
      }
    Containers.push_back(std::move(C));
  }

  // Taskwait markers: join points for the Cilk-style task concurrency.
  for (unsigned I = 0; I < N; ++I)
    if (const auto *CI = dyn_cast<CallInst>(Insts[I]))
      if (CI->getCallee()->getName() == intrinsics::TaskWaitMarker)
        TaskWaitIdx.push_back(I);

  // Region containers from marker calls. Instructions are in program order
  // and the front-end emits regions as contiguous index ranges.
  RegionOf.assign(N, -1);
  std::vector<std::pair<unsigned, unsigned>> Stack; // (directiveId, startIdx)
  std::map<unsigned, std::pair<unsigned, unsigned>> Ranges; // id -> [a,b)
  for (unsigned I = 0; I < N; ++I) {
    const auto *CI = dyn_cast<CallInst>(Insts[I]);
    if (!CI)
      continue;
    const std::string &Name = CI->getCallee()->getName();
    if (Name == intrinsics::RegionBegin) {
      auto *IdC = cast<ConstantInt>(CI->getArg(0));
      Stack.push_back({static_cast<unsigned>(IdC->getValue()), I + 1});
    } else if (Name == intrinsics::RegionEnd) {
      if (Stack.empty())
        continue;
      auto [Id, Start] = Stack.back();
      Stack.pop_back();
      Ranges[Id] = {Start, I};
    }
  }
  // Unterminated regions (sub-statement ended in a return) extend to the
  // end of the function.
  while (!Stack.empty()) {
    auto [Id, Start] = Stack.back();
    Stack.pop_back();
    Ranges[Id] = {Start, N};
  }

  for (auto &[Id, Range] : Ranges) {
    const Directive *D = PI.getDirective(Id);
    if (!D)
      continue;
    Container C;
    switch (D->Kind) {
    case DirectiveKind::Parallel:
      C.Kind = PSRegionKind::ParallelRegion;
      break;
    case DirectiveKind::Critical:
      C.Kind = PSRegionKind::CriticalRegion;
      break;
    case DirectiveKind::Atomic:
      C.Kind = PSRegionKind::AtomicRegion;
      break;
    case DirectiveKind::Single:
      C.Kind = PSRegionKind::SingleRegion;
      break;
    case DirectiveKind::Master:
      C.Kind = PSRegionKind::MasterRegion;
      break;
    case DirectiveKind::Ordered:
      C.Kind = PSRegionKind::OrderedRegion;
      break;
    case DirectiveKind::Task:
      C.Kind = PSRegionKind::TaskRegion;
      break;
    default:
      continue;
    }
    C.D = D;
    C.Members.assign(N, false);
    for (unsigned I = Range.first; I < Range.second; ++I) {
      if (isMarker(Insts[I]))
        continue;
      C.Members[I] = true;
      ++C.Size;
    }
    unsigned CIdx = static_cast<unsigned>(Containers.size());
    for (unsigned I = Range.first; I < Range.second; ++I)
      if (C.Members[I] &&
          (RegionOf[I] < 0 ||
           Containers[RegionOf[I]].Size >= C.Size)) // innermost region wins
        RegionOf[I] = static_cast<int>(CIdx);
    Containers.push_back(std::move(C));
  }
}

PSNodeId BuilderImpl::contextOf(PSNodeId NodeId) const {
  for (PSNodeId N = NodeId; N != NoContext; N = G->node(N).Parent)
    if (G->node(N).IsContext)
      return N;
  return NoContext;
}

void BuilderImpl::buildNodes() {
  const auto &Insts = FA.instructions();
  unsigned N = static_cast<unsigned>(Insts.size());
  bool HN = Feats.HierarchicalNodesAndUndirectedEdges;

  // Root node always exists (the function is the outermost hierarchical
  // node; without HN it is the only one, holding all leaves directly).
  PSNode Root;
  Root.IsHierarchical = true;
  Root.Region = PSRegionKind::Function;
  Root.IsContext = Feats.Contexts;
  PSNodeId RootId = G->addNode(std::move(Root));
  Containers[0].Node = RootId;

  if (HN) {
    // One hierarchical node per non-function container. Parent = smallest
    // strictly-larger container containing all members.
    // Order containers by ascending size for parent search.
    std::vector<unsigned> BySize;
    for (unsigned C = 1; C < Containers.size(); ++C)
      BySize.push_back(C);
    std::sort(BySize.begin(), BySize.end(), [&](unsigned A, unsigned B) {
      return Containers[A].Size < Containers[B].Size;
    });

    for (unsigned C = 1; C < Containers.size(); ++C) {
      PSNode Node;
      Node.IsHierarchical = true;
      Node.Region = Containers[C].Kind;
      Node.L = Containers[C].L;
      if (Containers[C].D) {
        Node.DirectiveId = Containers[C].D->Id;
        Node.CriticalName = Containers[C].D->CriticalName;
      }
      // Loops and parallel regions are the labeled contexts.
      Node.IsContext = Feats.Contexts &&
                       (Containers[C].Kind == PSRegionKind::LoopNode ||
                        Containers[C].Kind == PSRegionKind::ParallelRegion);
      Containers[C].Node = G->addNode(std::move(Node));
    }

    auto Contains = [&](unsigned Outer, unsigned Inner) {
      if (Containers[Outer].Size < Containers[Inner].Size)
        return false;
      for (unsigned I = 0; I < N; ++I)
        if (Containers[Inner].Members[I] && !Containers[Outer].Members[I])
          return false;
      return true;
    };

    // Parent = smallest container (other than itself) that contains it;
    // BySize ordering makes the first containing candidate the smallest.
    for (size_t SI = 0; SI < BySize.size(); ++SI) {
      unsigned C = BySize[SI];
      unsigned Parent = 0;
      for (size_t SJ = SI + 1; SJ < BySize.size(); ++SJ) {
        unsigned Cand = BySize[SJ];
        if (Contains(Cand, C)) {
          Parent = Cand;
          break;
        }
      }
      PSNodeId P = Containers[Parent].Node;
      G->node(Containers[C].Node).Parent = P;
      G->node(P).Children.push_back(Containers[C].Node);
    }
  }

  // Leaves: every non-marker instruction. Parent = innermost container.
  for (unsigned I = 0; I < N; ++I) {
    Instruction *Inst = Insts[I];
    if (isMarker(Inst))
      continue;
    PSNode Leaf;
    Leaf.I = Inst;
    PSNodeId ParentNode = RootId;
    if (HN) {
      unsigned Best = 0;
      for (unsigned C = 1; C < Containers.size(); ++C)
        if (Containers[C].Members[I] &&
            (Best == 0 || Containers[C].Size < Containers[Best].Size))
          Best = C;
      ParentNode = Containers[Best].Node;
    }
    Leaf.Parent = ParentNode;
    PSNodeId Id = G->addNode(std::move(Leaf));
    G->node(ParentNode).Children.push_back(Id);
    G->mapLeaf(Inst, Id);
  }

  // Traits.
  if (Feats.NodeTraits && HN) {
    for (Container &C : Containers) {
      if (C.Node == NoContext)
        continue;
      PSNode &Node = G->node(C.Node);
      // Trait context: the innermost enclosing context (loop / parallel
      // region / function root).
      PSNodeId Ctx =
          Feats.Contexts && Node.Parent != NoContext ? contextOf(Node.Parent)
                                                     : NoContext;
      switch (C.Kind) {
      case PSRegionKind::CriticalRegion:
      case PSRegionKind::AtomicRegion:
        Node.Traits.push_back({TraitKind::Atomic, Ctx});
        Node.Traits.push_back({TraitKind::Unordered, Ctx});
        break;
      case PSRegionKind::SingleRegion:
      case PSRegionKind::MasterRegion:
        Node.Traits.push_back({TraitKind::Singular, Ctx});
        break;
      default:
        break;
      }
    }
  }
}

void BuilderImpl::buildEdges() {
  bool HN = Feats.HierarchicalNodesAndUndirectedEdges;

  // Dedup set for undirected edges: (nodeA, nodeB, ctx).
  std::map<std::tuple<PSNodeId, PSNodeId, PSNodeId>, unsigned> UndirectedIdx;

  auto MutualExclusionRegion = [&](const Instruction *I) -> int {
    // Innermost region only: a critical nested in another region wins the
    // RegionOf slot, which is the case that matters for lock pairing.
    int R = regionContainerOf(FA.indexOf(I));
    if (R < 0)
      return -1;
    PSRegionKind K = Containers[R].Kind;
    if (K == PSRegionKind::CriticalRegion || K == PSRegionKind::AtomicRegion)
      return R;
    return -1;
  };

  auto OrderedRegionOf = [&](const Instruction *I) -> int {
    unsigned Idx = FA.indexOf(I);
    int R = regionContainerOf(Idx);
    if (R >= 0 && Containers[R].Kind == PSRegionKind::OrderedRegion)
      return R;
    return -1;
  };

  auto TaskRegionOf = [&](const Instruction *I) -> int {
    int R = regionContainerOf(FA.indexOf(I));
    if (R >= 0 && Containers[R].Kind == PSRegionKind::TaskRegion)
      return R;
    return -1;
  };

  auto SyncBetween = [&](unsigned Lo, unsigned Hi) {
    for (unsigned W : TaskWaitIdx)
      if (W > Lo && W < Hi)
        return true;
    return false;
  };

  auto SyncInsideLoop = [&](unsigned Header) {
    const Loop *L = FA.loopInfo().getLoopByHeader(Header);
    if (!L)
      return true; // unknown: conservative
    for (unsigned W : TaskWaitIdx)
      if (L->contains(FA.instructions()[W]->getParent()->getIndex()))
        return true;
    return false;
  };

  auto SameLock = [&](int RA, int RB) {
    const Container &A = Containers[RA], &B = Containers[RB];
    if (A.Kind == PSRegionKind::CriticalRegion &&
        B.Kind == PSRegionKind::CriticalRegion)
      return A.D->CriticalName == B.D->CriticalName;
    // Atomic regions: conservatively one lock domain (sound; see DESIGN.md).
    return A.Kind == PSRegionKind::AtomicRegion &&
           B.Kind == PSRegionKind::AtomicRegion;
  };

  for (const DepEdge &E : Edges) {
    if (isMarker(E.Src) || isMarker(E.Dst))
      continue;
    PSNodeId SrcLeaf = G->leafOf(E.Src);
    PSNodeId DstLeaf = G->leafOf(E.Dst);
    assert(SrcLeaf != NoContext && DstLeaf != NoContext &&
           "leaf missing for non-marker instruction");

    PSDirectedEdge Out;
    Out.Src = SrcLeaf;
    Out.Dst = DstLeaf;
    Out.Kind = E.Kind;
    Out.Intra = E.Intra;
    Out.MemObject = E.MemObject;
    Out.IsIVDep = E.IsIVDep;
    Out.IsIO = E.IsIO;
    Out.CarriedAtHeaders = E.CarriedAtHeaders;
    Out.MustCarriedAtHeaders = E.MustCarriedAtHeaders;
    Out.SpecCarriedAtHeaders = E.SpecCarriedAtHeaders;
    Out.ValueSpecCarriedAtHeaders = E.ValueSpecCarriedAtHeaders;
    Out.OracleAtHeaders = E.OracleAtHeaders;

    // Cilk-style task concurrency (Appendix A, needs the SESE hierarchical
    // nodes): a spawned strand runs concurrently with its continuation and
    // with other strands until the next sync. Memory conflicts between a
    // task and anything outside it (with no intervening sync) carry no
    // ordering; conflicts between dynamic instances of the same task are
    // unordered across loop iterations when no sync joins them inside the
    // loop. (Hyperobjects make this safe for reducible data — the PSV
    // variables; plain races are the programmer's responsibility, exactly
    // as in Cilk.)
    if (HN && E.isMemory()) {
      int TA = TaskRegionOf(E.Src), TB = TaskRegionOf(E.Dst);
      if ((TA >= 0 || TB >= 0)) {
        unsigned IA = FA.indexOf(E.Src), IB = FA.indexOf(E.Dst);
        unsigned Lo = std::min(IA, IB), Hi = std::max(IA, IB);
        auto KeepSynced = [&](std::set<unsigned> &Headers) {
          std::set<unsigned> Keep;
          for (unsigned H : Headers)
            if (SyncInsideLoop(H))
              Keep.insert(H);
          Headers = std::move(Keep);
        };
        if (TA != TB && !SyncBetween(Lo, Hi)) {
          Out.Intra = false;
          KeepSynced(Out.CarriedAtHeaders);
          KeepSynced(Out.MustCarriedAtHeaders);
          KeepSynced(Out.SpecCarriedAtHeaders);
          KeepSynced(Out.ValueSpecCarriedAtHeaders);
        } else if (TA == TB && TA >= 0) {
          KeepSynced(Out.CarriedAtHeaders);
          KeepSynced(Out.MustCarriedAtHeaders);
          KeepSynced(Out.SpecCarriedAtHeaders);
          KeepSynced(Out.ValueSpecCarriedAtHeaders);
        }
      }
    }

    // Process each carried level against the declared parallel semantics.
    // Speculatively-disproven levels run through the same logic: a feature
    // that would remove the carried dependence anyway removes the spec
    // marker too (a sound removal needs no runtime-validated assumption).
    std::set<unsigned> AllHeaders = E.CarriedAtHeaders;
    AllHeaders.insert(E.SpecCarriedAtHeaders.begin(),
                      E.SpecCarriedAtHeaders.end());
    AllHeaders.insert(E.ValueSpecCarriedAtHeaders.begin(),
                      E.ValueSpecCarriedAtHeaders.end());
    for (unsigned H : AllHeaders) {
      bool Drop = false;

      // (a) Privatizable / reducible variables (PSV).
      if (Feats.ParallelVariables && E.isMemory() &&
          (isPrivatizableAt(E.MemObject, H) || isReducibleAt(E.MemObject, H)))
        Drop = true;

      // (b) Mutual-exclusion regions (HN+UE, and NT for the atomicity that
      // makes overlap-free reordering sound): carried conflicts between
      // critical/atomic instances become an undirected edge between the
      // region nodes.
      if (!Drop && HN && Feats.NodeTraits && (E.isMemory() || E.IsIO)) {
        int RA = MutualExclusionRegion(E.Src);
        int RB = MutualExclusionRegion(E.Dst);
        if (RA >= 0 && RB >= 0 && SameLock(RA, RB)) {
          PSNodeId CtxNode =
              Feats.Contexts ? G->loopNode(H) : NoContext;
          PSNodeId NA = Containers[RA].Node, NB = Containers[RB].Node;
          if (NA > NB)
            std::swap(NA, NB);
          auto Key = std::make_tuple(NA, NB, CtxNode);
          auto It = UndirectedIdx.find(Key);
          if (It == UndirectedIdx.end()) {
            PSUndirectedEdge UE;
            UE.A = NA;
            UE.B = NB;
            UE.Context = CtxNode;
            UE.CarriedAtHeaders.insert(H);
            UndirectedIdx[Key] =
                static_cast<unsigned>(G->undirectedEdges().size());
            G->addUndirectedEdge(std::move(UE));
          } else {
            G->undirectedEdge(It->second).CarriedAtHeaders.insert(H);
          }
          Drop = true;
        }
      }

      // (c) Declared independence of worksharing loops (contexts): drop
      // carried dependences at the annotated loop. The loop counter is
      // implicitly private (OpenMP 5.0 §2.21.1), so its bookkeeping
      // dependences drop unconditionally. Everything else is excluded when
      // it sits inside an ordered/critical/atomic region, is I/O
      // (orderless-converted below), or is an object the directive itself
      // declares special (private/reduction/live-out/threadprivate — those
      // are governed by the parallel-semantic variables, feature (a)).
      if (!Drop && Feats.Contexts && E.isMemory() &&
          worksharingDirective(H)) {
        const ForLoopMeta *HMeta =
            PI.getForLoopMeta(FA.function().getBlock(H));
        bool IsCounter =
            HMeta && E.MemObject && HMeta->CounterStorage == E.MemObject;
        bool Protected = OrderedRegionOf(E.Src) >= 0 ||
                         OrderedRegionOf(E.Dst) >= 0 ||
                         MutualExclusionRegion(E.Src) >= 0 ||
                         MutualExclusionRegion(E.Dst) >= 0;
        bool DeclaredData = isPrivatizableAt(E.MemObject, H) ||
                            isReducibleAt(E.MemObject, H) ||
                            (E.MemObject && PI.isThreadPrivate(E.MemObject));
        // A must-carried level is a *proof* the conflict manifests
        // (definite constant-distance recurrence): the annotation resolves
        // uncertainty, it cannot erase a proof, so the level survives and
        // the loop keeps its dependence SCC (ROADMAP soundness audit).
        if ((IsCounter || (!E.IsIO && !Protected && !DeclaredData)) &&
            !E.isMustCarriedAt(H))
          Drop = true;
      }

      // (d) I/O inside a declared-independent loop: any interleaving is
      // allowed → orderless undirected edge between the printing nodes.
      if (!Drop && HN && E.IsIO && worksharingDirective(H) &&
          OrderedRegionOf(E.Src) < 0 && OrderedRegionOf(E.Dst) < 0) {
        PSNodeId CtxNode = Feats.Contexts ? G->loopNode(H) : NoContext;
        PSNodeId NA = SrcLeaf, NB = DstLeaf;
        if (NA > NB)
          std::swap(NA, NB);
        auto Key = std::make_tuple(NA, NB, CtxNode);
        if (!UndirectedIdx.count(Key)) {
          PSUndirectedEdge UE;
          UE.A = NA;
          UE.B = NB;
          UE.Context = CtxNode;
          UE.CarriedAtHeaders.insert(H);
          UndirectedIdx[Key] =
              static_cast<unsigned>(G->undirectedEdges().size());
          G->addUndirectedEdge(std::move(UE));
        }
        Drop = true;
      }

      if (Drop) {
        Out.CarriedAtHeaders.erase(H);
        Out.MustCarriedAtHeaders.erase(H);
        Out.SpecCarriedAtHeaders.erase(H);
        Out.ValueSpecCarriedAtHeaders.erase(H);
      }
    }

    // Data-selectors on loop live-out/live-in RAW edges (DSDE).
    if (Feats.DataSelectors && Out.Kind == DepKind::MemoryRAW &&
        E.MemObject) {
      for (const Directive &D : PI.directives()) {
        if (!D.isLoopDirective() || !D.LoopHeader)
          continue;
        const Loop *L =
            FA.loopInfo().getLoopByHeader(D.LoopHeader->getIndex());
        if (!L)
          continue;
        bool SrcIn = L->contains(E.Src->getParent()->getIndex());
        bool DstIn = L->contains(E.Dst->getParent()->getIndex());
        for (const LiveOutClause &LO : D.LiveOuts) {
          if (LO.Var.Storage != E.MemObject)
            continue;
          PSNodeId Ctx = Feats.Contexts ? G->loopNode(L->getHeader())
                                        : NoContext;
          if (SrcIn && !DstIn && LO.Policy == LiveOutPolicy::Last)
            Out.Selector = DataSelector{SelectorKind::LastProducer, Ctx};
          else if (SrcIn && !DstIn && LO.Policy == LiveOutPolicy::Any)
            Out.Selector = DataSelector{SelectorKind::AnyProducer, Ctx};
          else if (!SrcIn && DstIn && LO.Policy == LiveOutPolicy::First)
            Out.Selector = DataSelector{SelectorKind::AllConsumers, Ctx};
        }
      }
    }

    // An edge whose every constraint was discharged (no intra ordering, no
    // carried level, no assumption, no selector) represents nothing.
    if (!Out.Intra && Out.CarriedAtHeaders.empty() &&
        Out.SpecCarriedAtHeaders.empty() &&
        Out.ValueSpecCarriedAtHeaders.empty() && !Out.Selector)
      continue;

    G->addDirectedEdge(std::move(Out));
  }
}

void BuilderImpl::buildVariables() {
  if (!Feats.ParallelVariables)
    return;

  auto AccessNodes = [&](const Value *Storage, std::vector<PSNodeId> &Uses,
                         std::vector<PSNodeId> &Defs) {
    for (Instruction *I : FA.instructions()) {
      PSNodeId Leaf = G->leafOf(I);
      if (Leaf == NoContext)
        continue;
      if (auto *LI = dyn_cast<LoadInst>(I)) {
        if (findUnderlyingObject(LI->getPointer()) == Storage)
          Uses.push_back(Leaf);
      } else if (auto *SI = dyn_cast<StoreInst>(I)) {
        if (findUnderlyingObject(SI->getPointer()) == Storage)
          Defs.push_back(Leaf);
      }
    }
  };

  auto AddVariable = [&](PSVariable::VarKind Kind, const VarRef &V,
                         PSNodeId Ctx, ReduceOp Op, Function *Reducer) {
    if (!V.Storage)
      return;
    PSVariable Var;
    Var.Kind = Kind;
    Var.Context = Ctx;
    Var.Storage = V.Storage;
    Var.Name = V.Name;
    Var.Op = Op;
    Var.CustomReducer = Reducer;
    AccessNodes(V.Storage, Var.UseNodes, Var.DefNodes);
    if (Var.UseNodes.empty() && Var.DefNodes.empty())
      return; // variable not accessed in this function
    G->addVariable(std::move(Var));
  };

  for (const Directive &D : PI.directives()) {
    PSNodeId Ctx = NoContext;
    if (Feats.Contexts && D.LoopHeader)
      Ctx = G->loopNode(D.LoopHeader->getIndex());
    for (const VarRef &V : D.Privates)
      AddVariable(PSVariable::VarKind::Privatizable, V, Ctx, ReduceOp::Add,
                  nullptr);
    for (const LiveOutClause &L : D.LiveOuts)
      AddVariable(PSVariable::VarKind::Privatizable, L.Var, Ctx,
                  ReduceOp::Add, nullptr);
    for (const ReductionClause &R : D.Reductions)
      AddVariable(PSVariable::VarKind::Reducible, R.Var, Ctx, R.Op,
                  R.CustomReducer);
  }
  for (const VarRef &V : PI.threadPrivates())
    AddVariable(PSVariable::VarKind::Privatizable, V,
                Feats.Contexts ? G->root() : NoContext, ReduceOp::Add,
                nullptr);
}

std::unique_ptr<PSPDG> BuilderImpl::run() {
  G = std::make_unique<PSPDG>();
  collectContainers();
  buildNodes();
  buildEdges();
  buildVariables();
  return std::move(G);
}

} // namespace

std::unique_ptr<PSPDG> psc::buildPSPDG(const FunctionAnalysis &FA,
                                       DepOracleStack &Stack,
                                       const FeatureSet &Features) {
  std::vector<DepEdge> Edges = buildDepEdges(Stack);
  return BuilderImpl(FA, Edges, Features).run();
}

std::unique_ptr<PSPDG> psc::buildPSPDG(const FunctionAnalysis &FA,
                                       const DependenceInfo &DI,
                                       const FeatureSet &Features) {
  return BuilderImpl(FA, DI.edges(), Features).run();
}

std::unique_ptr<PSPDG>
psc::buildPSPDGFromEdges(const FunctionAnalysis &FA,
                         const std::vector<DepEdge> &Edges,
                         const FeatureSet &Features) {
  return BuilderImpl(FA, Edges, Features).run();
}
