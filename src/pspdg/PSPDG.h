//===- PSPDG.h - The Parallel Semantics Program Dependence Graph -*- C++ -*-===//
///
/// \file
/// In-memory form of the paper's Table 1 grammar:
///
///   PS-PDG   ::= (Node+, Edge*, Variable*, VariableAccess*)
///   Node     ::= (Instruction, Trait*) | (HierarchicalNode, Trait*)
///   Trait    ::= (Singular | Unordered | Atomic, Context)
///   Edge     ::= DirectedEdge | UndirectedEdge
///   DirectedEdge   ::= (Node_p, Node_c, Data-selector?)
///   UndirectedEdge ::= (Node, Node, Context)
///   Data-selector  ::= (Any-Producer | Last-Producer | All-Consumers, Ctx)
///   Variable ::= (Privatizable | Reducible, Context)
///   VariableAccess ::= (Variable, Node*_use, Node*_def)
///   Context  ::= unique identifier (a labeled hierarchical node)
///
/// Directed edges additionally carry the analysis payload (dependence kind,
/// carried levels, base object) so the parallelization planner can consume
/// the PS-PDG directly in place of the PDG (paper Fig. 2 / Fig. 12).
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_PSPDG_PSPDG_H
#define PSPDG_PSPDG_PSPDG_H

#include "analysis/DependenceAnalysis.h"
#include "ir/ParallelInfo.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace psc {

class Instruction;
class Loop;

/// Node id within one PSPDG. Id 0 is always the function root node.
using PSNodeId = unsigned;

/// Sentinel context meaning "no context specified" (global validity).
inline constexpr PSNodeId NoContext = ~0u;

/// Trait kinds (paper §3.2).
enum class TraitKind { Atomic, Unordered, Singular };

/// A trait scoped to a context.
struct PSTrait {
  TraitKind Kind = TraitKind::Atomic;
  PSNodeId Context = NoContext;

  bool operator==(const PSTrait &O) const {
    return Kind == O.Kind && Context == O.Context;
  }
  bool operator<(const PSTrait &O) const {
    return Kind != O.Kind ? Kind < O.Kind : Context < O.Context;
  }
};

/// What source construct a hierarchical node represents (for printing and
/// for the planner's region queries; carries no extra semantics).
enum class PSRegionKind {
  None,     ///< Instruction leaf.
  Function, ///< Root.
  LoopNode,
  ParallelRegion,
  CriticalRegion,
  AtomicRegion,
  SingleRegion,
  MasterRegion,
  OrderedRegion,
  TaskRegion ///< Cilk-style spawned strand (paper Appendix A).
};

/// One PS-PDG node: an instruction leaf or a hierarchical grouping.
struct PSNode {
  bool IsHierarchical = false;
  Instruction *I = nullptr;            ///< Leaf payload.
  std::vector<PSNodeId> Children;      ///< Hierarchical payload.
  PSNodeId Parent = NoContext;

  /// Labeled hierarchical nodes are contexts (paper §3.3); the label is the
  /// node id itself.
  bool IsContext = false;

  std::vector<PSTrait> Traits;

  // Provenance (not part of the abstract grammar).
  PSRegionKind Region = PSRegionKind::None;
  const Loop *L = nullptr;             ///< For LoopNode.
  unsigned DirectiveId = ~0u;          ///< For directive-derived regions.
  std::string CriticalName;

  bool hasTrait(TraitKind K) const {
    for (const PSTrait &T : Traits)
      if (T.Kind == K)
        return true;
    return false;
  }
};

/// Data-selector kinds (paper §3.5).
enum class SelectorKind { AnyProducer, LastProducer, AllConsumers };

struct DataSelector {
  SelectorKind Kind = SelectorKind::LastProducer;
  PSNodeId Context = NoContext;
};

/// Directed edge with the dependence payload and optional data-selector.
struct PSDirectedEdge {
  PSNodeId Src = 0;
  PSNodeId Dst = 0;
  DepKind Kind = DepKind::Register;
  bool Intra = true;
  std::set<unsigned> CarriedAtHeaders; ///< Loop header block indices.
  /// Subset of CarriedAtHeaders the oracle *proved* to manifest (definite
  /// constant-distance conflicts, DepEdge::MustCarriedAtHeaders): declared
  /// independence must never drop these levels, and views must not offer
  /// them for speculation.
  std::set<unsigned> MustCarriedAtHeaders;
  /// Headers where the carried dependence survives every PS-PDG feature
  /// removal but was *speculatively disproven* by the spec oracle: the
  /// plan view converts these into runtime-validated assumptions instead
  /// of treating the edge as carried (disjoint from CarriedAtHeaders).
  std::set<unsigned> SpecCarriedAtHeaders;
  /// Same, for the value-speculation stage (ValueSpec.h): the view turns
  /// these into per-value assumptions on the edge's MemObject.
  std::set<unsigned> ValueSpecCarriedAtHeaders;
  /// Per-header oracle attribution, carried through from
  /// DepEdge::OracleAtHeaders for the plan-decision log.
  std::map<unsigned, const char *> OracleAtHeaders;
  const Value *MemObject = nullptr;
  bool IsIVDep = false;
  bool IsIO = false;
  std::optional<DataSelector> Selector;
};

/// Undirected edge: the endpoints must not overlap but may run in either
/// order, within the given context (paper §3.4).
struct PSUndirectedEdge {
  PSNodeId A = 0;
  PSNodeId B = 0;
  PSNodeId Context = NoContext;
  /// Loop headers whose carried dependences this edge absorbs (provenance
  /// for the planner: the orderless conflict happens across iterations of
  /// these loops).
  std::set<unsigned> CarriedAtHeaders;
};

/// Parallel-semantic variable (paper §3.6) with its use/def access lists.
struct PSVariable {
  enum class VarKind { Privatizable, Reducible };
  VarKind Kind = VarKind::Privatizable;
  PSNodeId Context = NoContext;
  const Value *Storage = nullptr;
  std::string Name;

  // Reduction description (Reducible only).
  ReduceOp Op = ReduceOp::Add;
  Function *CustomReducer = nullptr;

  // VariableAccess: nodes that use (load) / define (store) the variable.
  std::vector<PSNodeId> UseNodes;
  std::vector<PSNodeId> DefNodes;
};

/// The Parallel Semantics Program Dependence Graph of one function.
class PSPDG {
public:
  // --- Nodes --------------------------------------------------------------
  PSNodeId addNode(PSNode N) {
    Nodes.push_back(std::move(N));
    return static_cast<PSNodeId>(Nodes.size() - 1);
  }
  const PSNode &node(PSNodeId Id) const { return Nodes[Id]; }
  PSNode &node(PSNodeId Id) { return Nodes[Id]; }
  unsigned numNodes() const { return static_cast<unsigned>(Nodes.size()); }
  PSNodeId root() const { return 0; }

  /// Leaf node of an instruction; NoContext if the instruction has no node
  /// (marker intrinsics are annotations, not computation).
  PSNodeId leafOf(const Instruction *I) const {
    auto It = LeafOf.find(I);
    return It == LeafOf.end() ? NoContext : It->second;
  }
  void mapLeaf(const Instruction *I, PSNodeId Id) { LeafOf[I] = Id; }

  // --- Edges --------------------------------------------------------------
  void addDirectedEdge(PSDirectedEdge E) { Directed.push_back(std::move(E)); }
  void addUndirectedEdge(PSUndirectedEdge E) {
    Undirected.push_back(std::move(E));
  }
  const std::vector<PSDirectedEdge> &directedEdges() const { return Directed; }
  const std::vector<PSUndirectedEdge> &undirectedEdges() const {
    return Undirected;
  }
  PSUndirectedEdge &undirectedEdge(unsigned Idx) { return Undirected[Idx]; }

  // --- Variables ------------------------------------------------------------
  void addVariable(PSVariable V) { Variables.push_back(std::move(V)); }
  const std::vector<PSVariable> &variables() const { return Variables; }

  /// Variable entry for a storage object, or null.
  const PSVariable *variableFor(const Value *Storage) const {
    for (const PSVariable &V : Variables)
      if (V.Storage == Storage)
        return &V;
    return nullptr;
  }

  // --- Queries used by the planner ----------------------------------------

  /// Innermost hierarchical ancestor of \p Id with the given region kind,
  /// or NoContext.
  PSNodeId enclosingRegion(PSNodeId Id, PSRegionKind Kind) const;

  /// The loop node for a loop (by header block index), or NoContext.
  PSNodeId loopNode(unsigned HeaderBlock) const;

  /// DOT rendering of the graph (hierarchy as clusters).
  std::string toDot() const;

  /// Human-readable summary (node/edge/variable counts by kind).
  std::string summary() const;

private:
  std::vector<PSNode> Nodes;
  std::vector<PSDirectedEdge> Directed;
  std::vector<PSUndirectedEdge> Undirected;
  std::vector<PSVariable> Variables;
  std::map<const Instruction *, PSNodeId> LeafOf;
};

} // namespace psc

#endif // PSPDG_PSPDG_PSPDG_H
