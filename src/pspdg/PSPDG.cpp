//===- PSPDG.cpp ----------------------------------------------*- C++ -*-===//

#include "pspdg/PSPDG.h"

#include "ir/BasicBlock.h"
#include "ir/Instructions.h"
#include "ir/LoopInfo.h"

#include <functional>
#include <sstream>

using namespace psc;

PSNodeId PSPDG::enclosingRegion(PSNodeId Id, PSRegionKind Kind) const {
  for (PSNodeId N = Id; N != NoContext; N = Nodes[N].Parent)
    if (Nodes[N].Region == Kind)
      return N;
  return NoContext;
}

PSNodeId PSPDG::loopNode(unsigned HeaderBlock) const {
  for (PSNodeId N = 0; N < Nodes.size(); ++N)
    if (Nodes[N].Region == PSRegionKind::LoopNode && Nodes[N].L &&
        Nodes[N].L->getHeader() == HeaderBlock)
      return N;
  return NoContext;
}

namespace {

const char *regionName(PSRegionKind K) {
  switch (K) {
  case PSRegionKind::None:
    return "inst";
  case PSRegionKind::Function:
    return "function";
  case PSRegionKind::LoopNode:
    return "loop";
  case PSRegionKind::ParallelRegion:
    return "parallel";
  case PSRegionKind::CriticalRegion:
    return "critical";
  case PSRegionKind::AtomicRegion:
    return "atomic";
  case PSRegionKind::SingleRegion:
    return "single";
  case PSRegionKind::MasterRegion:
    return "master";
  case PSRegionKind::OrderedRegion:
    return "ordered";
  case PSRegionKind::TaskRegion:
    return "task";
  }
  return "?";
}

const char *traitName(TraitKind K) {
  switch (K) {
  case TraitKind::Atomic:
    return "atomic";
  case TraitKind::Unordered:
    return "unordered";
  case TraitKind::Singular:
    return "singular";
  }
  return "?";
}

const char *selectorName(SelectorKind K) {
  switch (K) {
  case SelectorKind::AnyProducer:
    return "any-producer";
  case SelectorKind::LastProducer:
    return "last-producer";
  case SelectorKind::AllConsumers:
    return "all-consumers";
  }
  return "?";
}

} // namespace

std::string PSPDG::toDot() const {
  std::ostringstream OS;
  OS << "digraph PSPDG {\n  compound=true;\n  node [shape=box,fontsize=9];\n";

  // Emit hierarchy as nested clusters via recursive lambda.
  std::function<void(PSNodeId, unsigned)> Emit = [&](PSNodeId Id,
                                                     unsigned Depth) {
    const PSNode &N = Nodes[Id];
    std::string Indent(2 * (Depth + 1), ' ');
    if (!N.IsHierarchical) {
      OS << Indent << "n" << Id << " [label=\"" << Id << ": "
         << (N.I ? N.I->getOpcodeName() : "?") << "\"];\n";
      return;
    }
    OS << Indent << "subgraph cluster" << Id << " {\n";
    OS << Indent << "  label=\"" << regionName(N.Region);
    if (N.IsContext)
      OS << " [ctx " << Id << "]";
    for (const PSTrait &T : N.Traits) {
      OS << " +" << traitName(T.Kind);
      if (T.Context != NoContext)
        OS << "@" << T.Context;
    }
    OS << "\";\n";
    // Anchor node so edges can target the cluster.
    OS << Indent << "  n" << Id << " [shape=point,style=invis];\n";
    for (PSNodeId C : N.Children)
      Emit(C, Depth + 1);
    OS << Indent << "}\n";
  };
  Emit(root(), 0);

  for (const PSDirectedEdge &E : Directed) {
    OS << "  n" << E.Src << " -> n" << E.Dst << " [label=\"";
    switch (E.Kind) {
    case DepKind::Register:
      OS << "reg";
      break;
    case DepKind::MemoryRAW:
      OS << "RAW";
      break;
    case DepKind::MemoryWAR:
      OS << "WAR";
      break;
    case DepKind::MemoryWAW:
      OS << "WAW";
      break;
    case DepKind::Control:
      OS << "ctrl";
      break;
    }
    if (!E.CarriedAtHeaders.empty())
      OS << " LC";
    if (E.Selector)
      OS << " " << selectorName(E.Selector->Kind);
    OS << "\"" << (E.Kind == DepKind::Control ? ",style=dashed" : "")
       << "];\n";
  }
  for (const PSUndirectedEdge &E : Undirected)
    OS << "  n" << E.A << " -> n" << E.B
       << " [dir=none,style=bold,color=blue,label=\"unordered@" << E.Context
       << "\"];\n";
  OS << "}\n";
  return OS.str();
}

std::string PSPDG::summary() const {
  unsigned Leaves = 0, Hier = 0, Ctx = 0, Traits = 0;
  for (const PSNode &N : Nodes) {
    if (N.IsHierarchical)
      ++Hier;
    else
      ++Leaves;
    if (N.IsContext)
      ++Ctx;
    Traits += static_cast<unsigned>(N.Traits.size());
  }
  unsigned Selectors = 0;
  for (const PSDirectedEdge &E : Directed)
    if (E.Selector)
      ++Selectors;
  std::ostringstream OS;
  OS << "PS-PDG: " << Leaves << " instruction nodes, " << Hier
     << " hierarchical nodes (" << Ctx << " contexts), " << Traits
     << " traits, " << Directed.size() << " directed edges (" << Selectors
     << " with data-selectors), " << Undirected.size()
     << " undirected edges, " << Variables.size() << " parallel variables";
  return OS.str();
}
