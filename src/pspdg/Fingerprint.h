//===- Fingerprint.h - Canonical PS-PDG serialization ------------*- C++ -*-===//
///
/// \file
/// Canonical, semantics-only serialization of a PS-PDG, used to compare the
/// abstractions of two different programs (paper §4: two semantically
/// different programs are "indistinguishable" under an ablated PS-PDG iff
/// their fingerprints are equal).
///
/// Canonicalization rules:
///  * nodes are numbered in program order of their leaves; instruction
///    leaves serialize as their opcode (plus operand shape), not value ids;
///  * hierarchical nodes that carry no semantics — no traits, no context
///    label referenced by any trait/edge/variable/selector, and no incident
///    undirected edges — are transparent (flattened), since a bare grouping
///    adds no constraints;
///  * contexts serialize as the canonical number of their labeled node;
///  * edges/variables/traits/selectors are sorted before emission.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_PSPDG_FINGERPRINT_H
#define PSPDG_PSPDG_FINGERPRINT_H

#include "pspdg/PSPDG.h"

#include <string>

namespace psc {

/// Canonical serialization; two PS-PDGs represent the same constraints iff
/// the strings are equal.
std::string fingerprint(const PSPDG &G);

/// FNV-1a hash of fingerprint(G), for compact reporting.
uint64_t fingerprintHash(const PSPDG &G);

} // namespace psc

#endif // PSPDG_PSPDG_FINGERPRINT_H
