//===- Fingerprint.h - Canonical PS-PDG serialization ------------*- C++ -*-===//
///
/// \file
/// Canonical, semantics-only serialization of a PS-PDG, used to compare the
/// abstractions of two different programs (paper §4: two semantically
/// different programs are "indistinguishable" under an ablated PS-PDG iff
/// their fingerprints are equal).
///
/// Canonicalization rules:
///  * nodes are numbered in program order of their leaves; instruction
///    leaves serialize as their opcode (plus operand shape), not value ids;
///  * hierarchical nodes that carry no semantics — no traits, no context
///    label referenced by any trait/edge/variable/selector, and no incident
///    undirected edges — are transparent (flattened), since a bare grouping
///    adds no constraints;
///  * contexts serialize as the canonical number of their labeled node;
///  * edges/variables/traits/selectors are sorted before emission.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_PSPDG_FINGERPRINT_H
#define PSPDG_PSPDG_FINGERPRINT_H

#include "pspdg/PSPDG.h"

#include <string>

namespace psc {

/// Canonical serialization; two PS-PDGs represent the same constraints iff
/// the strings are equal.
std::string fingerprint(const PSPDG &G);

/// FNV-1a hash of fingerprint(G), for compact reporting.
uint64_t fingerprintHash(const PSPDG &G);

class Function;

/// Canonical serialization of one function *body*, using the fingerprint's
/// leaf conventions (program-order instruction numbering; operands as
/// global/alloca names, argument indices, or defining-instruction numbers;
/// branch targets as block indices; constants kind-only — literal values
/// are training/adversarial *inputs* under the speculation contract, not
/// structure). Two bodies serialize equally iff their instruction streams
/// are structurally identical — the staleness guard the dependence profile
/// records (DepProfile): profile instruction indices are only meaningful
/// against a structurally identical body.
std::string functionBody(const Function &F);

/// FNV-1a hash of functionBody(F).
uint64_t functionBodyHash(const Function &F);

} // namespace psc

#endif // PSPDG_PSPDG_FINGERPRINT_H
