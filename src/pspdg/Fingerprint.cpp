//===- Fingerprint.cpp ----------------------------------------*- C++ -*-===//

#include "pspdg/Fingerprint.h"

#include "ir/BasicBlock.h"
#include "ir/Function.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

using namespace psc;

namespace {

class Canonicalizer {
public:
  explicit Canonicalizer(const PSPDG &G) : G(G) {
    numberLeaves();
    findMeaningfulNodes();
    numberHierarchical();
  }

  std::string serialize();

private:
  void numberLeaves();
  void findMeaningfulNodes();
  void numberHierarchical();

  /// Canonical id of any node: leaves map directly; hierarchical nodes map
  /// through HierNumber; flattened/unknown map to a stable sentinel.
  long canonical(PSNodeId Id) const {
    if (Id == NoContext)
      return -1;
    auto LIt = LeafNumber.find(Id);
    if (LIt != LeafNumber.end())
      return static_cast<long>(LIt->second);
    auto HIt = HierNumber.find(Id);
    if (HIt != HierNumber.end())
      return static_cast<long>(HIt->second);
    return -1; // flattened hierarchical node: no identity
  }

  std::string leafRef(const Value *V) const;
  void collectLeafSet(PSNodeId Id, std::vector<unsigned> &Out) const;

  const PSPDG &G;
  std::map<PSNodeId, unsigned> LeafNumber;
  std::set<PSNodeId> Meaningful;
  std::map<PSNodeId, unsigned> HierNumber;
};

void Canonicalizer::numberLeaves() {
  // Leaves were created in program order with ascending node ids.
  std::vector<PSNodeId> Leaves;
  for (PSNodeId Id = 0; Id < G.numNodes(); ++Id)
    if (!G.node(Id).IsHierarchical)
      Leaves.push_back(Id);
  for (unsigned K = 0; K < Leaves.size(); ++K)
    LeafNumber[Leaves[K]] = K;
}

void Canonicalizer::findMeaningfulNodes() {
  // Contexts referenced by any semantic element.
  std::set<PSNodeId> ReferencedContexts;
  for (PSNodeId Id = 0; Id < G.numNodes(); ++Id)
    for (const PSTrait &T : G.node(Id).Traits)
      if (T.Context != NoContext)
        ReferencedContexts.insert(T.Context);
  for (const PSDirectedEdge &E : G.directedEdges())
    if (E.Selector && E.Selector->Context != NoContext)
      ReferencedContexts.insert(E.Selector->Context);
  for (const PSUndirectedEdge &E : G.undirectedEdges())
    if (E.Context != NoContext)
      ReferencedContexts.insert(E.Context);
  for (const PSVariable &V : G.variables())
    if (V.Context != NoContext)
      ReferencedContexts.insert(V.Context);

  std::set<PSNodeId> UndirectedEndpoints;
  for (const PSUndirectedEdge &E : G.undirectedEdges()) {
    UndirectedEndpoints.insert(E.A);
    UndirectedEndpoints.insert(E.B);
  }

  for (PSNodeId Id = 0; Id < G.numNodes(); ++Id) {
    const PSNode &N = G.node(Id);
    if (!N.IsHierarchical)
      continue;
    if (!N.Traits.empty() || ReferencedContexts.count(Id) ||
        UndirectedEndpoints.count(Id))
      Meaningful.insert(Id);
  }
}

void Canonicalizer::collectLeafSet(PSNodeId Id,
                                   std::vector<unsigned> &Out) const {
  const PSNode &N = G.node(Id);
  if (!N.IsHierarchical) {
    Out.push_back(LeafNumber.at(Id));
    return;
  }
  for (PSNodeId C : N.Children)
    collectLeafSet(C, Out);
}

void Canonicalizer::numberHierarchical() {
  // Order meaningful hierarchical nodes by their sorted leaf sets.
  std::vector<std::pair<std::vector<unsigned>, PSNodeId>> Keyed;
  for (PSNodeId Id : Meaningful) {
    std::vector<unsigned> Leaves;
    collectLeafSet(Id, Leaves);
    std::sort(Leaves.begin(), Leaves.end());
    Keyed.push_back({std::move(Leaves), Id});
  }
  std::sort(Keyed.begin(), Keyed.end());
  unsigned Next = static_cast<unsigned>(LeafNumber.size());
  for (auto &[Leaves, Id] : Keyed)
    HierNumber[Id] = Next++;
}

std::string Canonicalizer::leafRef(const Value *V) const {
  if (const auto *CI = dyn_cast<ConstantInt>(V))
    return "c" + std::to_string(CI->getValue());
  if (const auto *CF = dyn_cast<ConstantFloat>(V)) {
    std::ostringstream OS;
    OS << "f" << CF->getValue();
    return OS.str();
  }
  if (const auto *GV = dyn_cast<GlobalVariable>(V))
    return "g:" + GV->getName();
  if (const auto *Fn = dyn_cast<Function>(V))
    return "fn:" + Fn->getName();
  if (const auto *Arg = dyn_cast<Argument>(V))
    return "arg" + std::to_string(Arg->getArgIndex());
  if (const auto *I = dyn_cast<Instruction>(V)) {
    // Reference the defining instruction's leaf; alloca names are part of
    // program identity (variable names).
    if (const auto *AI = dyn_cast<AllocaInst>(I))
      return "a:" + AI->getName();
    return "%" + std::to_string(canonical(G.leafOf(I)));
  }
  return "?";
}

std::string Canonicalizer::serialize() {
  std::ostringstream OS;

  // --- Instruction leaves in program order.
  OS << "leaves\n";
  for (PSNodeId Id = 0; Id < G.numNodes(); ++Id) {
    const PSNode &N = G.node(Id);
    if (N.IsHierarchical)
      continue;
    const Instruction *I = N.I;
    OS << LeafNumber.at(Id) << " " << I->getOpcodeName();
    for (const Value *Op : I->operands())
      OS << " " << leafRef(Op);
    if (const auto *Br = dyn_cast<BranchInst>(I))
      OS << " ->b" << Br->getTarget()->getIndex();
    if (const auto *CBr = dyn_cast<CondBranchInst>(I))
      OS << " ->b" << CBr->getTrueTarget()->getIndex() << ",b"
         << CBr->getFalseTarget()->getIndex();
    OS << "\n";
  }

  // --- Meaningful hierarchical nodes with traits.
  OS << "hier\n";
  std::vector<std::pair<unsigned, PSNodeId>> Hier;
  for (auto &[Id, Num] : HierNumber)
    Hier.push_back({Num, Id});
  std::sort(Hier.begin(), Hier.end());
  for (auto &[Num, Id] : Hier) {
    std::vector<unsigned> Leaves;
    collectLeafSet(Id, Leaves);
    std::sort(Leaves.begin(), Leaves.end());
    OS << Num << " {";
    for (unsigned L : Leaves)
      OS << L << " ";
    OS << "}";
    std::vector<PSTrait> Traits = G.node(Id).Traits;
    std::sort(Traits.begin(), Traits.end());
    for (const PSTrait &T : Traits) {
      OS << " t" << static_cast<int>(T.Kind) << "@" << canonical(T.Context);
    }
    OS << "\n";
  }

  // --- Directed edges.
  std::vector<std::string> Lines;
  for (const PSDirectedEdge &E : G.directedEdges()) {
    std::ostringstream L;
    L << canonical(E.Src) << ">" << canonical(E.Dst) << " k"
      << static_cast<int>(E.Kind) << (E.Intra ? " i" : "");
    for (unsigned H : E.CarriedAtHeaders)
      L << " lc" << H;
    if (E.Selector)
      L << " sel" << static_cast<int>(E.Selector->Kind) << "@"
        << canonical(E.Selector->Context);
    Lines.push_back(L.str());
  }
  std::sort(Lines.begin(), Lines.end());
  OS << "dedges\n";
  for (const std::string &L : Lines)
    OS << L << "\n";

  // --- Undirected edges.
  Lines.clear();
  for (const PSUndirectedEdge &E : G.undirectedEdges()) {
    long A = canonical(E.A), B = canonical(E.B);
    if (A > B)
      std::swap(A, B);
    std::ostringstream L;
    L << A << "~" << B << "@" << canonical(E.Context);
    Lines.push_back(L.str());
  }
  std::sort(Lines.begin(), Lines.end());
  OS << "uedges\n";
  for (const std::string &L : Lines)
    OS << L << "\n";

  // --- Parallel-semantic variables.
  Lines.clear();
  for (const PSVariable &V : G.variables()) {
    std::ostringstream L;
    L << (V.Kind == PSVariable::VarKind::Privatizable ? "priv" : "red") << " "
      << V.Name << "@" << canonical(V.Context);
    if (V.Kind == PSVariable::VarKind::Reducible) {
      L << " op" << static_cast<int>(V.Op);
      if (V.CustomReducer)
        L << ":" << V.CustomReducer->getName();
    }
    std::vector<long> Uses, Defs;
    for (PSNodeId N : V.UseNodes)
      Uses.push_back(canonical(N));
    for (PSNodeId N : V.DefNodes)
      Defs.push_back(canonical(N));
    std::sort(Uses.begin(), Uses.end());
    std::sort(Defs.begin(), Defs.end());
    L << " u{";
    for (long U : Uses)
      L << U << " ";
    L << "} d{";
    for (long D : Defs)
      L << D << " ";
    L << "}";
    Lines.push_back(L.str());
  }
  std::sort(Lines.begin(), Lines.end());
  OS << "vars\n";
  for (const std::string &L : Lines)
    OS << L << "\n";

  return OS.str();
}

} // namespace

std::string psc::fingerprint(const PSPDG &G) {
  return Canonicalizer(G).serialize();
}

namespace {

uint64_t fnv1a(const std::string &S) {
  uint64_t H = 1469598103934665603ULL;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ULL;
  }
  return H;
}

} // namespace

uint64_t psc::fingerprintHash(const PSPDG &G) { return fnv1a(fingerprint(G)); }

std::string psc::functionBody(const Function &F) {
  // Program-order instruction numbering (the same order FunctionAnalysis
  // assigns profile indices in), then the fingerprint's leaf conventions —
  // with one deliberate deviation: constants serialize kind-only. Literal
  // values are program *inputs* under the speculation contract (training
  // and adversarial variants differ exactly in literals, and the runtime
  // validator exists to catch behavioral divergence); the hash guards
  // *index retargeting*, which only structure — opcodes, operand shapes,
  // names, block targets — can cause.
  std::map<const Instruction *, unsigned> Number;
  for (const BasicBlock *BB : F)
    for (const Instruction *I : *BB)
      Number[I] = static_cast<unsigned>(Number.size());

  auto Ref = [&](const Value *V) -> std::string {
    if (isa<ConstantInt>(V))
      return "c";
    if (isa<ConstantFloat>(V))
      return "f";
    if (const auto *GV = dyn_cast<GlobalVariable>(V))
      return "g:" + GV->getName();
    if (const auto *Fn = dyn_cast<Function>(V))
      return "fn:" + Fn->getName();
    if (const auto *Arg = dyn_cast<Argument>(V))
      return "arg" + std::to_string(Arg->getArgIndex());
    if (const auto *I = dyn_cast<Instruction>(V)) {
      if (const auto *AI = dyn_cast<AllocaInst>(I))
        return "a:" + AI->getName();
      return "%" + std::to_string(Number.at(I));
    }
    return "?";
  };

  std::ostringstream OS;
  OS << "body @" << F.getName() << "\n";
  for (const BasicBlock *BB : F) {
    OS << "b" << BB->getIndex() << "\n";
    for (const Instruction *I : *BB) {
      OS << Number.at(I) << " " << I->getOpcodeName();
      for (const Value *Op : I->operands())
        OS << " " << Ref(Op);
      if (const auto *Br = dyn_cast<BranchInst>(I))
        OS << " ->b" << Br->getTarget()->getIndex();
      if (const auto *CBr = dyn_cast<CondBranchInst>(I))
        OS << " ->b" << CBr->getTrueTarget()->getIndex() << ",b"
           << CBr->getFalseTarget()->getIndex();
      OS << "\n";
    }
  }
  return OS.str();
}

uint64_t psc::functionBodyHash(const Function &F) {
  return fnv1a(functionBody(F));
}
