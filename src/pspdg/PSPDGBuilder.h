//===- PSPDGBuilder.h - Building the PS-PDG from annotated IR ----*- C++ -*-===//
///
/// \file
/// Constructs the PS-PDG of a function from (a) the dependence analysis of
/// its IR and (b) the explicit parallel semantics in the module's
/// ParallelInfo, following the OpenMP→PS-PDG mapping of paper §5:
///
///   * declarations of independence (worksharing loops) → hierarchical
///     nodes + contexts; carried dependences the programmer declared away
///     are removed in the declared context;
///   * data properties (private/firstprivate/lastprivate/threadprivate/
///     reduction/reducible) → parallel-semantic variables with use/def
///     edges; first/lastprivate/relaxed live-outs → data-selectors;
///   * ordering (critical/atomic) → hierarchical nodes with atomic +
///     unordered traits and undirected edges; ordered regions keep their
///     directed edges; single/master → singular trait.
///
/// A FeatureSet selects which extensions are expressible, implementing the
/// §4 ablations: a disabled feature degrades to the PDG-conservative
/// encoding (kept directed edges, no traits, no variables, ...).
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_PSPDG_PSPDGBUILDER_H
#define PSPDG_PSPDG_PSPDGBUILDER_H

#include "analysis/DependenceAnalysis.h"
#include "pspdg/Features.h"
#include "pspdg/PSPDG.h"

#include <memory>

namespace psc {

/// Builds the PS-PDG of FA's function, issuing every dependence through
/// the shared oracle stack (repeated builds are served by its cache).
std::unique_ptr<PSPDG> buildPSPDG(const FunctionAnalysis &FA,
                                  DepOracleStack &Stack,
                                  const FeatureSet &Features = FeatureSet());

/// Compatibility: consume an already-materialized edge set.
std::unique_ptr<PSPDG> buildPSPDG(const FunctionAnalysis &FA,
                                  const DependenceInfo &DI,
                                  const FeatureSet &Features = FeatureSet());

/// Core entry point: build from an explicit dependence edge set (used by
/// the differential tests to feed reference edges through the builder).
std::unique_ptr<PSPDG> buildPSPDGFromEdges(const FunctionAnalysis &FA,
                                           const std::vector<DepEdge> &Edges,
                                           const FeatureSet &Features =
                                               FeatureSet());

} // namespace psc

#endif // PSPDG_PSPDG_PSPDGBUILDER_H
