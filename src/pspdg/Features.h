//===- Features.h - PS-PDG feature (ablation) control ------------*- C++ -*-===//
///
/// \file
/// The five PS-PDG extensions over the PDG, as separable features. The
/// paper's §4 necessity argument removes each one in turn and shows that two
/// semantically-different programs collapse onto the same abstraction; our
/// NecessityTest and bench_ablation do exactly that through this struct.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_PSPDG_FEATURES_H
#define PSPDG_PSPDG_FEATURES_H

#include <string>

namespace psc {

/// Which PS-PDG extensions the builder is allowed to use.
struct FeatureSet {
  /// Hierarchical nodes + undirected edges (paper §3.1/§3.4, Fig. 11-A).
  bool HierarchicalNodesAndUndirectedEdges = true;
  /// Node traits: atomic / unordered / singular (§3.2, Fig. 11-B).
  bool NodeTraits = true;
  /// Contexts: parallel semantics scoped to code regions (§3.3, Fig. 11-C).
  bool Contexts = true;
  /// Data-selector directed edges (§3.5, Fig. 11-D).
  bool DataSelectors = true;
  /// Parallel-semantic variables + use/def relations (§3.6, Fig. 11-E).
  bool ParallelVariables = true;

  static FeatureSet full() { return FeatureSet(); }

  static FeatureSet withoutHierarchicalNodes() {
    FeatureSet F;
    F.HierarchicalNodesAndUndirectedEdges = false;
    return F;
  }
  static FeatureSet withoutNodeTraits() {
    FeatureSet F;
    F.NodeTraits = false;
    return F;
  }
  static FeatureSet withoutContexts() {
    FeatureSet F;
    F.Contexts = false;
    return F;
  }
  static FeatureSet withoutDataSelectors() {
    FeatureSet F;
    F.DataSelectors = false;
    return F;
  }
  static FeatureSet withoutParallelVariables() {
    FeatureSet F;
    F.ParallelVariables = false;
    return F;
  }

  std::string str() const {
    if (HierarchicalNodesAndUndirectedEdges && NodeTraits && Contexts &&
        DataSelectors && ParallelVariables)
      return "full";
    std::string S = "without:";
    if (!HierarchicalNodesAndUndirectedEdges)
      S += " HN+UE";
    if (!NodeTraits)
      S += " NT";
    if (!Contexts)
      S += " C";
    if (!DataSelectors)
      S += " DSDE";
    if (!ParallelVariables)
      S += " PSV";
    return S;
  }
};

} // namespace psc

#endif // PSPDG_PSPDG_FEATURES_H
