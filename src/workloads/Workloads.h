//===- Workloads.h - NAS-like PSC kernels -------------------------*- C++ -*-===//
///
/// \file
/// The eight benchmark kernels of the evaluation (paper §6: the NAS
/// Parallel Benchmark suite). Each PSC kernel reproduces the parallel
/// structure of its NAS counterpart — the same pragma patterns (worksharing
/// loops, threadprivate buffers, critical sections, reductions, ordered
/// pipelines) over scaled-down problem sizes, so that the abstraction-power
/// experiments (options, critical path) exercise the same dependence
/// shapes. See DESIGN.md §2 for the substitution argument.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_WORKLOADS_WORKLOADS_H
#define PSPDG_WORKLOADS_WORKLOADS_H

#include <string>
#include <vector>

namespace psc {

/// One benchmark kernel.
struct Workload {
  std::string Name;        ///< "IS", "CG", ...
  std::string Description; ///< What the kernel computes.
  std::string Source;      ///< PSC source text.
  long ExpectedChecksum;   ///< Value the program prints last (determinism).
};

/// The eight NAS-like kernels, in the paper's order (BT CG EP FT IS LU MG
/// SP).
const std::vector<Workload> &nasWorkloads();

/// The NAS eight plus the speculation-era extensions (UA: unstructured
/// adaptive, whose permutation gather/scatter only parallelizes under a
/// profile-backed speculative plan). The paper-figure reproductions stay
/// on nasWorkloads(); the speculation suite and pscc accept these too.
const std::vector<Workload> &extendedWorkloads();

/// Lookup by name (extended set); null if absent.
const Workload *findWorkload(const std::string &Name);

} // namespace psc

#endif // PSPDG_WORKLOADS_WORKLOADS_H
