//===- NecessityPairs.cpp -------------------------------------*- C++ -*-===//

#include "workloads/NecessityPairs.h"

using namespace psc;

namespace {

// --- A: hierarchical nodes + undirected edges (critical vs ordered) ---------
// Fast: dynamic instances of the region must not overlap but may run in any
// order. Slow: instances must run in loop-iteration order.
const char *AFast = R"PSC(
int hist[64];
int data[256];
int main() {
  int i;
  #pragma psc parallel for
  for (i = 0; i < 256; i++) {
    #pragma psc critical
    {
      hist[data[i] % 64] += 1;
    }
  }
  print(hist[0]);
  return 0;
}
)PSC";

const char *ASlow = R"PSC(
int hist[64];
int data[256];
int main() {
  int i;
  #pragma psc parallel for ordered
  for (i = 0; i < 256; i++) {
    #pragma psc ordered
    {
      hist[data[i] % 64] += 1;
    }
  }
  print(hist[0]);
  return 0;
}
)PSC";

// --- B: node traits (single vs replicated print) -----------------------------
const char *BFast = R"PSC(
int flag = 0;
int main() {
  int i;
  #pragma psc parallel
  {
    #pragma psc single
    {
      print(42);
    }
    #pragma psc for
    for (i = 0; i < 128; i++) {
      flag += 0;
    }
  }
  return 0;
}
)PSC";

const char *BSlow = R"PSC(
int flag = 0;
int main() {
  int i;
  #pragma psc parallel
  {
    {
      print(42);
    }
    #pragma psc for
    for (i = 0; i < 128; i++) {
      flag += 0;
    }
  }
  return 0;
}
)PSC";

// --- C: contexts (inner-loop independence declared vs unknown) --------------
// The indirect subscript defeats the dependence analysis; only the
// worksharing annotation on the inner loop (valid in the context of the
// outer loop) reveals that inner iterations are independent.
const char *CFast = R"PSC(
double buf[1024];
int idx[32];
int main() {
  int i;
  int j;
  #pragma psc parallel
  {
    for (i = 1; i < 32; i++) {
      #pragma psc for
      for (j = 0; j < 32; j++) {
        buf[idx[j] * 32 + i] = buf[idx[j] * 32 + i - 1] + 1.0;
      }
    }
  }
  print(1);
  return 0;
}
)PSC";

const char *CSlow = R"PSC(
double buf[1024];
int idx[32];
int main() {
  int i;
  int j;
  #pragma psc parallel
  {
    for (i = 1; i < 32; i++) {
      for (j = 0; j < 32; j++) {
        buf[idx[j] * 32 + i] = buf[idx[j] * 32 + i - 1] + 1.0;
      }
    }
  }
  print(1);
  return 0;
}
)PSC";

// --- D: data-selector directed edges (relaxed vs lastprivate live-out) ------
const char *DFast = R"PSC(
int value = 0;
int data[128];
int main() {
  int i;
  #pragma psc parallel for relaxed(value)
  for (i = 0; i < 128; i++) {
    value = data[i];
  }
  print(value);
  return 0;
}
)PSC";

const char *DSlow = R"PSC(
int value = 0;
int data[128];
int main() {
  int i;
  #pragma psc parallel for lastprivate(value)
  for (i = 0; i < 128; i++) {
    value = data[i];
  }
  print(value);
  return 0;
}
)PSC";

// --- E: parallel-semantic variables (reducible struct vs ordered access) ----
const char *EFast = R"PSC(
double pt[4];
#pragma psc reducible(pt : merge_pt)

void merge_pt(double dst[], double src[]) {
  int k;
  for (k = 0; k < 4; k++) {
    dst[k] = dst[k] + src[k];
  }
}

int main() {
  int i;
  #pragma psc parallel for
  for (i = 0; i < 256; i++) {
    pt[i % 4] = pt[i % 4] + 1.0;
  }
  print(1);
  return 0;
}
)PSC";

const char *ESlow = R"PSC(
double pt[4];

void merge_pt(double dst[], double src[]) {
  int k;
  for (k = 0; k < 4; k++) {
    dst[k] = dst[k] + src[k];
  }
}

int main() {
  int i;
  #pragma psc parallel for ordered
  for (i = 0; i < 256; i++) {
    #pragma psc ordered
    {
      pt[i % 4] = pt[i % 4] + 1.0;
    }
  }
  print(1);
  return 0;
}
)PSC";

std::vector<NecessityPair> makePairs() {
  return {
      {"A-HierarchicalNodesAndUndirectedEdges",
       "hierarchical nodes + undirected edges",
       FeatureSet::withoutHierarchicalNodes(), AFast, ASlow},
      {"B-NodeTraits", "node traits", FeatureSet::withoutNodeTraits(), BFast,
       BSlow},
      {"C-Contexts", "contexts", FeatureSet::withoutContexts(), CFast, CSlow},
      {"D-DataSelectors", "data-selector directed edges",
       FeatureSet::withoutDataSelectors(), DFast, DSlow},
      {"E-ParallelVariables", "parallel-semantic variables",
       FeatureSet::withoutParallelVariables(), EFast, ESlow},
  };
}

} // namespace

const std::vector<NecessityPair> &psc::necessityPairs() {
  static const std::vector<NecessityPair> Pairs = makePairs();
  return Pairs;
}
