//===- Workloads.cpp - NAS-like PSC kernel sources -------------*- C++ -*-===//
///
/// \file
/// PSC sources of the eight NAS-like kernels. Each kernel reproduces the
/// parallel structure of its NAS counterpart:
///
///   BT/SP — ADI line solves: worksharing sweeps over independent lines
///           with loop-carried recurrences along each line.
///   CG    — sparse matvec (worksharing), dot products (scalar reductions),
///           axpy updates, sequential outer iteration.
///   EP    — independent random samples, scalar reductions, histogram
///           update in an atomic region.
///   FT    — row-wise butterfly transform with a threadprivate scratch
///           buffer, evolve step.
///   IS    — the paper's Fig. 3 kernel: threadprivate histogram, indirect
///           worksharing fill, per-thread prefix sum, critical merge.
///   LU    — SSOR-style wavefront with an ordered recurrence plus
///           worksharing RHS loops.
///   MG    — stencil smoothing/restriction with a non-annotated
///           private-buffer loop and a max-reduction in a critical region.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace psc;

namespace {

// --------------------------------------------------------------------- IS --
const char *ISSource = R"PSC(
// NAS IS: bucket-sort ranking kernel (paper Fig. 3 structure).
int key_array[2048];
int key_buff1[256];
int prv_buff1[256];
#pragma psc threadprivate(prv_buff1)

int main() {
  int i;
  int it;
  int seed;
  int checksum;

  // Deterministic keys.
  seed = 314159;
  for (i = 0; i < 2048; i++) {
    seed = lcg(seed);
    key_array[i] = seed % 256;
  }

  for (it = 0; it < 10; it++) {
    #pragma psc parallel
    {
      // Loop 1: clear the (thread-private) buffer.
      for (i = 0; i < 256; i++) {
        prv_buff1[i] = 0;
      }
      // Loop 2: worksharing histogram fill (indirect subscript).
      #pragma psc for
      for (i = 0; i < 2048; i++) {
        prv_buff1[key_array[i]] += 1;
      }
      // Loop 3: per-thread prefix sum (loop-carried).
      for (i = 0; i < 255; i++) {
        prv_buff1[i + 1] += prv_buff1[i];
      }
      // Loop 4: merge private buffers into the shared histogram.
      #pragma psc critical
      {
        for (i = 0; i < 256; i++) {
          key_buff1[i] += prv_buff1[i];
        }
      }
    }
  }

  checksum = 0;
  for (i = 0; i < 256; i++) {
    checksum = checksum + key_buff1[i] * (i + 1);
  }
  checksum = checksum % 1000000007;
  print(checksum);
  return 0;
}
)PSC";

// --------------------------------------------------------------------- EP --
const char *EPSource = R"PSC(
// NAS EP: independent pseudo-random pairs, reductions, atomic histogram.
double q[10];
double sx = 0.0;
double sy = 0.0;

int main() {
  int i;
  int k;
  int seed;
  int l;
  double x;
  double y;
  double t;
  int checksum;
  int qsum;

  #pragma psc parallel for reduction(+: sx, sy) private(k, seed, l, x, y, t)
  for (i = 0; i < 256; i++) {
    seed = 271828 + i * 7919;
    for (k = 0; k < 32; k++) {
      seed = lcg(seed);
      x = seed % 1024;
      x = x / 1024.0;
      seed = lcg(seed);
      y = seed % 1024;
      y = y / 1024.0;
      t = x * x + y * y;
      if (t <= 1.0) {
        sx = sx + x;
        sy = sy + y;
        l = imax(x * 10.0, y * 10.0);
        #pragma psc atomic
        q[l] += 1.0;
      }
    }
  }

  qsum = 0;
  for (i = 0; i < 10; i++) {
    qsum = qsum + q[i] * (i + 1);
  }
  checksum = qsum * 1000 + sx + sy;
  print(checksum);
  return 0;
}
)PSC";

// --------------------------------------------------------------------- CG --
const char *CGSource = R"PSC(
// NAS CG: conjugate-gradient iterations over a fixed sparse stencil.
int rowstr[129];
int colidx[512];
double a[512];
double x[128];
double z[128];
double r[128];
double p[128];
double q[128];
double rho = 0.0;
double rho0 = 0.0;
double alpha = 0.0;
double beta = 0.0;
double dq = 0.0;

int main() {
  int i;
  int j;
  int k;
  int cgit;
  int nnz;
  double sum;
  int checksum;

  // Build a banded 4-entries-per-row sparse matrix deterministically.
  nnz = 0;
  for (j = 0; j < 128; j++) {
    rowstr[j] = nnz;
    for (k = 0; k < 4; k++) {
      colidx[nnz] = (j + k * 31) % 128;
      a[nnz] = 1.0 / (1.0 + (j + k) % 7);
      nnz = nnz + 1;
    }
  }
  rowstr[128] = nnz;

  #pragma psc parallel for
  for (j = 0; j < 128; j++) {
    x[j] = 1.0;
    r[j] = 1.0;
    p[j] = 1.0;
    z[j] = 0.0;
  }

  rho = 128.0;
  for (cgit = 0; cgit < 15; cgit++) {
    // Sparse matvec: q = A p (worksharing; indirect reads).
    #pragma psc parallel for private(sum, k)
    for (j = 0; j < 128; j++) {
      sum = 0.0;
      for (k = rowstr[j]; k < rowstr[j + 1]; k++) {
        sum = sum + a[k] * p[colidx[k]];
      }
      q[j] = sum;
    }

    // dq = p . q (scalar reduction).
    dq = 0.0;
    #pragma psc parallel for reduction(+: dq)
    for (j = 0; j < 128; j++) {
      dq = dq + p[j] * q[j];
    }
    alpha = rho / (dq + 0.000001);

    rho0 = rho;
    rho = 0.0;
    #pragma psc parallel for reduction(+: rho)
    for (j = 0; j < 128; j++) {
      z[j] = z[j] + alpha * p[j];
      r[j] = r[j] - alpha * q[j];
      rho = rho + r[j] * r[j];
    }
    beta = rho / (rho0 + 0.000001);

    #pragma psc parallel for
    for (j = 0; j < 128; j++) {
      p[j] = r[j] + beta * p[j];
    }
  }

  sum = 0.0;
  for (j = 0; j < 128; j++) {
    sum = sum + z[j] * z[j];
  }
  checksum = sum * 1000.0;
  i = checksum;
  print(i);
  return 0;
}
)PSC";

// --------------------------------------------------------------------- FT --
// 32x32 grid; rows transformed by a butterfly-style pass using a
// threadprivate scratch buffer, then an evolve step.
const char *FTSource = R"PSC(
// NAS FT: row-wise butterfly transform with threadprivate scratch.
double re[1024];
double im[1024];
double scratch[64];
#pragma psc threadprivate(scratch)

int main() {
  int row;
  int k;
  int stage;
  int span;
  int pair;
  int it;
  double tr;
  double ti;
  double sum;
  int checksum;

  // Deterministic init.
  for (k = 0; k < 1024; k++) {
    re[k] = (k % 17) / 17.0;
    im[k] = (k % 13) / 13.0;
  }

  for (it = 0; it < 6; it++) {
    #pragma psc parallel
    {
      // Row-wise butterflies on a thread-private scratch buffer.
      #pragma psc for private(k, stage, span, pair, tr, ti)
      for (row = 0; row < 32; row++) {
        for (k = 0; k < 32; k++) {
          scratch[k] = re[row * 32 + k];
          scratch[32 + k] = im[row * 32 + k];
        }
        span = 1;
        for (stage = 0; stage < 5; stage++) {
          for (pair = 0; pair < 16; pair++) {
            k = (pair / span) * span * 2 + pair % span;
            tr = scratch[k + span];
            ti = scratch[32 + k + span];
            scratch[k + span] = scratch[k] - tr;
            scratch[32 + k + span] = scratch[32 + k] - ti;
            scratch[k] = scratch[k] + tr;
            scratch[32 + k] = scratch[32 + k] + ti;
          }
          span = span * 2;
        }
        for (k = 0; k < 32; k++) {
          re[row * 32 + k] = scratch[k];
          im[row * 32 + k] = scratch[32 + k];
        }
      }

      // Evolve: pointwise phase-like update.
      #pragma psc for private(tr)
      for (k = 0; k < 1024; k++) {
        tr = re[k];
        re[k] = re[k] * 0.75 - im[k] * 0.25;
        im[k] = im[k] * 0.75 + tr * 0.25;
      }
    }
  }

  sum = 0.0;
  for (k = 0; k < 1024; k++) {
    sum = sum + re[k] * re[k] + im[k] * im[k];
  }
  checksum = sum * 100.0;
  row = checksum;
  print(row);
  return 0;
}
)PSC";

// --------------------------------------------------------------------- MG --
const char *MGSource = R"PSC(
// NAS MG: stencil smoothing + restriction with a private line buffer and a
// norm computed through a critical max update.
double u[1156];
double v[1156];
double cgrid[289];
double line[34];
#pragma psc threadprivate(line)
double rnorm = 0.0;

int main() {
  int i;
  int j;
  int it;
  int ci;
  int cj;
  double s;
  int checksum;

  for (i = 0; i < 1156; i++) {
    u[i] = ((i * 37) % 100) / 100.0;
    v[i] = 0.0;
  }

  for (it = 0; it < 8; it++) {
    #pragma psc parallel
    {
      // Jacobi smoothing sweep (worksharing over interior rows).
      #pragma psc for private(j)
      for (i = 1; i < 33; i++) {
        for (j = 1; j < 33; j++) {
          v[i * 34 + j] = 0.25 * (u[(i - 1) * 34 + j] + u[(i + 1) * 34 + j]
                          + u[i * 34 + (j - 1)] + u[i * 34 + (j + 1)]);
        }
      }

      // Per-thread line relaxation on a private buffer (NOT annotated:
      // only the PS-PDG's privatizable variable exposes its parallelism).
      for (i = 1; i < 33; i++) {
        for (j = 0; j < 34; j++) {
          line[j] = v[i * 34 + j];
        }
        for (j = 1; j < 33; j++) {
          line[j] = 0.5 * line[j] + 0.25 * (line[j - 1] + line[j + 1]);
        }
        for (j = 0; j < 34; j++) {
          v[i * 34 + j] = line[j];
        }
      }

      // Restriction to the coarse grid (worksharing).
      #pragma psc for private(cj)
      for (ci = 0; ci < 17; ci++) {
        for (cj = 0; cj < 17; cj++) {
          cgrid[ci * 17 + cj] = v[(ci * 2) * 34 + (cj * 2)];
        }
      }

      // Norm via critical max update.
      #pragma psc for private(j, s)
      for (i = 1; i < 33; i++) {
        s = 0.0;
        for (j = 1; j < 33; j++) {
          s = s + fabs(v[i * 34 + j] - u[i * 34 + j]);
        }
        #pragma psc critical
        {
          rnorm = fmax(rnorm, s);
        }
      }

      // Copy back (worksharing).
      #pragma psc for
      for (i = 0; i < 1156; i++) {
        u[i] = v[i];
      }
    }
  }

  s = 0.0;
  for (i = 0; i < 289; i++) {
    s = s + cgrid[i];
  }
  checksum = s * 1000.0 + rnorm * 100.0;
  i = checksum;
  print(i);
  return 0;
}
)PSC";

// --------------------------------------------------------------------- LU --
const char *LUSource = R"PSC(
// NAS LU: SSOR-style sweeps — worksharing RHS, ordered wavefront solve.
double vmat[1024];
double rhs[1024];

int main() {
  int i;
  int j;
  int it;
  double s;
  int checksum;

  for (i = 0; i < 1024; i++) {
    vmat[i] = ((i * 13) % 50) / 50.0;
  }

  for (it = 0; it < 8; it++) {
    // RHS computation (worksharing, provably parallel).
    #pragma psc parallel for private(j)
    for (i = 1; i < 31; i++) {
      for (j = 1; j < 31; j++) {
        rhs[i * 32 + j] = 0.2 * (vmat[(i - 1) * 32 + j] + vmat[(i + 1) * 32 + j]
                          + vmat[i * 32 + (j - 1)] + vmat[i * 32 + (j + 1)]
                          + vmat[i * 32 + j]);
      }
    }

    // Lower-triangular wavefront: carried in both dimensions. The OpenMP
    // version expresses a pipelined plan with an ordered recurrence.
    #pragma psc parallel for ordered private(j)
    for (i = 1; i < 31; i++) {
      #pragma psc ordered
      {
        for (j = 1; j < 31; j++) {
          vmat[i * 32 + j] = rhs[i * 32 + j]
                          + 0.3 * vmat[(i - 1) * 32 + j]
                          + 0.3 * vmat[i * 32 + (j - 1)];
        }
      }
    }

    // Upper-triangular wavefront (reverse).
    #pragma psc parallel for ordered private(j)
    for (i = 30; i >= 1; i--) {
      #pragma psc ordered
      {
        for (j = 30; j >= 1; j--) {
          vmat[i * 32 + j] = vmat[i * 32 + j]
                          + 0.2 * vmat[(i + 1) * 32 + j]
                          + 0.2 * vmat[i * 32 + (j + 1)];
        }
      }
    }
  }

  s = 0.0;
  for (i = 0; i < 1024; i++) {
    s = s + vmat[i];
  }
  checksum = s * 100.0;
  i = checksum;
  print(i);
  return 0;
}
)PSC";

// --------------------------------------------------------------------- SP --
const char *SPSource = R"PSC(
// NAS SP: ADI sweeps — independent lines, carried recurrences along lines.
double g[1024];
double lhs[1024];

int main() {
  int i;
  int j;
  int it;
  double s;
  int checksum;

  for (i = 0; i < 1024; i++) {
    g[i] = ((i * 7) % 40) / 40.0;
    lhs[i] = 0.05 + ((i * 3) % 10) / 100.0;
  }

  for (it = 0; it < 8; it++) {
    // X-sweep: forward/backward recurrence along each row; rows are
    // independent (worksharing over i).
    #pragma psc parallel for private(j)
    for (i = 0; i < 32; i++) {
      for (j = 1; j < 32; j++) {
        g[i * 32 + j] = g[i * 32 + j] - lhs[i * 32 + j] * g[i * 32 + (j - 1)];
      }
      for (j = 30; j >= 0; j--) {
        g[i * 32 + j] = g[i * 32 + j] - lhs[i * 32 + j] * g[i * 32 + (j + 1)];
      }
    }

    // Y-sweep: recurrence along columns; columns independent.
    #pragma psc parallel for private(i)
    for (j = 0; j < 32; j++) {
      for (i = 1; i < 32; i++) {
        g[i * 32 + j] = g[i * 32 + j] - lhs[i * 32 + j] * g[(i - 1) * 32 + j];
      }
    }

    // Pointwise update (worksharing).
    #pragma psc parallel for
    for (i = 0; i < 1024; i++) {
      g[i] = g[i] * 0.9 + 0.01;
    }
  }

  s = 0.0;
  for (i = 0; i < 1024; i++) {
    s = s + g[i] * g[i];
  }
  checksum = s * 100.0;
  i = checksum;
  print(i);
  return 0;
}
)PSC";

// --------------------------------------------------------------------- BT --
const char *BTSource = R"PSC(
// NAS BT: block-tridiagonal ADI — heavier per-cell work than SP, carried
// line solves, worksharing sweeps, and a custom-reduced accumulator.
double w1[1024];
double w2[1024];
double acc[8];
#pragma psc reducible(acc : combine_acc)

void combine_acc(double dst[], double src[]) {
  int t;
  for (t = 0; t < 8; t++) {
    dst[t] = dst[t] + src[t];
  }
}

int main() {
  int i;
  int j;
  int it;
  double s;
  double d1;
  double d2;
  int checksum;

  for (i = 0; i < 1024; i++) {
    w1[i] = ((i * 11) % 60) / 60.0;
    w2[i] = 0.0;
  }

  for (it = 0; it < 8; it++) {
    // RHS-like heavy pointwise phase (worksharing).
    #pragma psc parallel for private(j, d1, d2)
    for (i = 1; i < 31; i++) {
      for (j = 1; j < 31; j++) {
        d1 = w1[(i - 1) * 32 + j] - 2.0 * w1[i * 32 + j] + w1[(i + 1) * 32 + j];
        d2 = w1[i * 32 + (j - 1)] - 2.0 * w1[i * 32 + j] + w1[i * 32 + (j + 1)];
        w2[i * 32 + j] = w1[i * 32 + j] + 0.1 * d1 + 0.1 * d2
                       + 0.01 * d1 * d2;
      }
    }

    // X line solves: carried along j, lines independent (worksharing).
    #pragma psc parallel for private(j)
    for (i = 0; i < 32; i++) {
      for (j = 1; j < 32; j++) {
        w2[i * 32 + j] = w2[i * 32 + j] - 0.4 * w2[i * 32 + (j - 1)];
      }
    }

    // Accumulate per-line statistics into a reducible block accumulator.
    #pragma psc parallel for private(j, s)
    for (i = 0; i < 32; i++) {
      s = 0.0;
      for (j = 0; j < 32; j++) {
        s = s + w2[i * 32 + j];
      }
      acc[i % 8] = acc[i % 8] + s;
    }

    // Copy back (worksharing).
    #pragma psc parallel for
    for (i = 0; i < 1024; i++) {
      w1[i] = w2[i];
    }
  }

  s = 0.0;
  for (i = 0; i < 8; i++) {
    s = s + acc[i] * (i + 1);
  }
  checksum = s * 10.0;
  i = checksum;
  print(i);
  return 0;
}
)PSC";

// --------------------------------------------------------------------- UA --
const char *UASource = R"PSC(
// NAS UA: unstructured adaptive — gather/scatter over an element->node
// map. The map is a permutation, so scatter iterations never touch the
// same node — but no sound analysis of an indirect subscript can prove
// it. This is the speculation subsystem's showcase: a training profile
// shows the conservative carried dependences never manifest, the spec
// oracle downgrades them to runtime-validated assumptions, and the
// scatter loops run as speculative DOALL/HELIX plans.
int map0[512];
double xnode[512];
double elem[512];
double wave[512];

int main() {
  int i;
  int it;
  double s;
  int checksum;

  // Element->node map: a permutation of 0..511 (167 is coprime with 512).
  for (i = 0; i < 512; i++) {
    map0[i] = (i * 167 + 3) % 512;
    xnode[i] = ((i * 29) % 97) / 97.0;
    elem[i] = 0.0;
    wave[i] = 0.0;
  }

  for (it = 0; it < 8; it++) {
    // Gather: read node values through the map (provably parallel: the
    // only write is the affine elem[i]).
    for (i = 0; i < 512; i++) {
      elem[i] = xnode[map0[i]] * 0.5 + elem[i] * 0.5;
    }
    // Scatter: update node values through the map. Iterations never
    // conflict (permutation), but the sound stack must assume they may.
    for (i = 0; i < 512; i++) {
      xnode[map0[i]] = xnode[map0[i]] * 0.9 + elem[i] * 0.1;
    }
    // Wavefront smoothing with an indirect flux scatter: the wave
    // recurrence is a real carried dependence (sequential SCC), the
    // elem scatter never conflicts — speculative HELIX territory.
    for (i = 1; i < 512; i++) {
      wave[i] = wave[i - 1] * 0.5 + xnode[i] * 0.5;
      elem[map0[i]] = elem[map0[i]] + wave[i] * 0.125;
    }
  }

  s = 0.0;
  for (i = 0; i < 512; i++) {
    s = s + xnode[i] * xnode[i] + wave[i];
  }
  checksum = s * 100.0;
  i = checksum;
  print(i);
  return 0;
}
)PSC";

// --------------------------------------------------------------------- RX --
const char *RXSource = R"PSC(
// RX: binned reduction statistics + table-strided cursor walk — the value
// & reduction speculation showcase. The bins loop writes custom-reducible
// storage, which the sound plan compiler rejects outright ("writes
// custom-reducible storage"); a training profile confirms every warm
// access is an additive read-modify-write and the reset path is cold, so
// the loop promotes to a speculative DOALL whose partials merge by
// executing combine_bins. The cursor loop carries `pos` through a
// table-driven stride no sound analysis can bound; the profile classifies
// it strided, and the runtime predicts + validates it per iteration.
// Every accumulated value is a dyadic rational, so any association order
// is bit-exact.
double bins[16];
#pragma psc reducible(bins : combine_bins)
double samples[512];
double trace[1024];
int step_tab[256];
int pos = 0;
int reset_len = 0;

void combine_bins(double dst[], double src[]) {
  int t;
  for (t = 0; t < 16; t++) {
    dst[t] = dst[t] + src[t];
  }
}

int main() {
  int i;
  int k;
  int it;
  double s;
  int checksum;

  for (i = 0; i < 512; i++) {
    samples[i] = (i % 64) / 64.0;
  }
  for (i = 0; i < 256; i++) {
    step_tab[i] = 2 + (i / 300);
  }
  for (i = 0; i < 1024; i++) {
    trace[i] = 0.0;
  }

  for (it = 0; it < 6; it++) {
    // Binned accumulation into custom-reducible storage. The adaptive
    // rebinning reset sweep is disabled in this configuration
    // (reset_len = 0): it is the cold, guard-watched path whose execution
    // means misspeculation.
    for (i = 0; i < 512; i++) {
      bins[i % 16] += samples[i] * 0.25;
      for (k = 0; k < reset_len; k++) {
        bins[k] = 0.0;
      }
    }
    // Cursor walk: pos advances by table strides (2 everywhere in
    // training). The carried scalar blocks every sound plan; value
    // speculation predicts it and unlocks DOALL.
    pos = 0;
    for (i = 0; i < 256; i++) {
      pos = pos + step_tab[i];
      trace[pos] = trace[pos] + samples[i];
    }
  }

  s = 0.0;
  for (i = 0; i < 16; i++) {
    s = s + bins[i] * (i + 1);
  }
  for (i = 0; i < 1024; i++) {
    s = s + trace[i];
  }
  checksum = s * 64.0 + pos;
  i = checksum;
  print(i);
  return 0;
}
)PSC";

std::vector<Workload> makeWorkloads() {
  return {
      {"BT", "block-tridiagonal ADI with custom-reduced accumulator",
       BTSource, 43376L},
      {"CG", "conjugate gradient with sparse matvec and reductions",
       CGSource, 286364430L},
      {"EP", "embarrassingly parallel sampling with atomic histogram",
       EPSource, 41512418L},
      {"FT", "row-wise butterfly transform with threadprivate scratch",
       FTSource, 3918867639892L},
      {"IS", "bucket-sort ranking (paper Fig. 3 kernel)", ISSource, 450017280L},
      {"LU", "SSOR wavefront with ordered recurrences", LUSource, 2677081538L},
      {"MG", "multigrid smoothing with private line buffer", MGSource, 105159L},
      {"SP", "scalar-pentadiagonal ADI line sweeps", SPSource, 9480L},
  };
}

std::vector<Workload> makeExtendedWorkloads() {
  std::vector<Workload> Out = makeWorkloads();
  Out.push_back({"UA",
                 "unstructured adaptive: permutation gather/scatter "
                 "(speculation showcase)",
                 UASource, 40225L});
  Out.push_back({"RX",
                 "binned reduction + strided cursor walk (value & "
                 "reduction speculation showcase)",
                 RXSource, 270848L});
  return Out;
}

} // namespace

const std::vector<Workload> &psc::nasWorkloads() {
  static const std::vector<Workload> Workloads = makeWorkloads();
  return Workloads;
}

const std::vector<Workload> &psc::extendedWorkloads() {
  static const std::vector<Workload> Workloads = makeExtendedWorkloads();
  return Workloads;
}

const Workload *psc::findWorkload(const std::string &Name) {
  for (const Workload &W : extendedWorkloads())
    if (W.Name == Name)
      return &W;
  return nullptr;
}
