//===- NecessityPairs.h - Paper Fig. 11 program pairs -------------*- C++ -*-===//
///
/// \file
/// The five program pairs of the paper's §4 necessity argument (Fig. 11
/// A–E). Each pair consists of a *fast* and a *slow* program with different
/// parallel semantics but identical computation; with the full PS-PDG their
/// abstractions differ, and with the named feature removed they collapse to
/// the same graph (checked by fingerprint equality in NecessityTest and
/// shown by examples/necessity_gallery).
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_WORKLOADS_NECESSITYPAIRS_H
#define PSPDG_WORKLOADS_NECESSITYPAIRS_H

#include "pspdg/Features.h"

#include <string>
#include <vector>

namespace psc {

/// One §4 ablation pair.
struct NecessityPair {
  std::string Name;    ///< "A-HierarchicalNodes", ...
  std::string Feature; ///< Human-readable feature name.
  FeatureSet Ablated;  ///< FeatureSet with the feature removed.
  std::string Fast;    ///< PSC source of the faster program.
  std::string Slow;    ///< PSC source of the slower program.
};

/// All five pairs, in paper order (A–E).
const std::vector<NecessityPair> &necessityPairs();

} // namespace psc

#endif // PSPDG_WORKLOADS_NECESSITYPAIRS_H
