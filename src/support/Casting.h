//===- Casting.h - LLVM-style isa/cast/dyn_cast templates ------*- C++ -*-===//
///
/// \file
/// Hand-rolled, opt-in RTTI in the style of llvm/Support/Casting.h. A class
/// hierarchy participates by exposing a Kind discriminator and a static
/// `classof(const Base *)` predicate on each subclass. This project is built
/// with -fno-rtti, so these templates are the only supported way to perform
/// checked downcasts.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_SUPPORT_CASTING_H
#define PSPDG_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace psc {

/// Returns true if \p Val is an instance of the class \p To.
///
/// \p Val must be non-null; use isa_and_nonnull for possibly-null values.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Like isa<>, but tolerates a null pointer (returns false for null).
template <typename To, typename From> bool isa_and_nonnull(const From *Val) {
  return Val && isa<To>(Val);
}

/// Checked downcast: asserts that \p Val is an instance of \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast for const pointers.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Downcast that returns null when \p Val is not an instance of \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// dyn_cast for const pointers.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// dyn_cast that tolerates a null input pointer.
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return isa_and_nonnull<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// dyn_cast_or_null for const pointers.
template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return isa_and_nonnull<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace psc

#endif // PSPDG_SUPPORT_CASTING_H
