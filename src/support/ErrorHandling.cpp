//===- ErrorHandling.cpp --------------------------------------*- C++ -*-===//

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

using namespace psc;

void psc::reportFatalError(const std::string &Msg) {
  std::fprintf(stderr, "fatal error: %s\n", Msg.c_str());
  std::abort();
}

void psc::unreachableInternal(const char *Msg, const char *File,
                              unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line,
               Msg ? Msg : "");
  std::abort();
}
