//===- ErrorHandling.h - Fatal error and unreachable helpers ---*- C++ -*-===//
///
/// \file
/// Fatal-error reporting for conditions triggered by user input (malformed
/// PSC sources, invalid CLI arguments) and an llvm_unreachable-style marker
/// for conditions that indicate internal bugs. The project is built with
/// -fno-exceptions, so errors that cannot be represented in the API surface
/// terminate the process with a diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_SUPPORT_ERRORHANDLING_H
#define PSPDG_SUPPORT_ERRORHANDLING_H

#include <string>

namespace psc {

/// Prints "fatal error: <Msg>" to stderr and aborts. Use for errors caused
/// by user input when no recoverable error path exists.
[[noreturn]] void reportFatalError(const std::string &Msg);

/// Internal implementation of the psc_unreachable macro.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace psc

/// Marks a point in code that must never be executed. Reaching it is an
/// internal bug (not a user-input error).
#define psc_unreachable(msg)                                                   \
  ::psc::unreachableInternal(msg, __FILE__, __LINE__)

#endif // PSPDG_SUPPORT_ERRORHANDLING_H
