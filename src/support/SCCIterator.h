//===- SCCIterator.h - Tarjan SCC over adjacency-list graphs ---*- C++ -*-===//
///
/// \file
/// Iterative Tarjan strongly-connected-component computation over a generic
/// graph given as node count + successor callback. Used to build the SCC-DAG
/// of per-loop dependence graphs (the NOELLE-style decomposition that the
/// DOALL/HELIX/DSWP planners consume, paper section 6.1).
///
/// Components are emitted in reverse topological order of the condensation
/// (Tarjan's natural emission order); callers that need topological order
/// reverse the result.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_SUPPORT_SCCITERATOR_H
#define PSPDG_SUPPORT_SCCITERATOR_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

namespace psc {

/// Result of an SCC computation over nodes [0, NumNodes).
struct SCCResult {
  /// Components[i] lists the member node ids of component i, in discovery
  /// order. Components are in reverse topological order of the SCC-DAG.
  std::vector<std::vector<unsigned>> Components;

  /// ComponentOf[n] is the index into Components for node n.
  std::vector<unsigned> ComponentOf;

  unsigned numComponents() const {
    return static_cast<unsigned>(Components.size());
  }

  /// Returns true if component \p C contains more than one node or a node
  /// with a self edge (the caller passes self-edge knowledge via
  /// \p HasSelfEdge since this structure does not retain the graph).
  bool isNonTrivial(unsigned C, bool HasSelfEdge) const {
    assert(C < Components.size() && "component index out of range");
    return Components[C].size() > 1 || HasSelfEdge;
  }
};

/// Computes SCCs with an iterative Tarjan algorithm.
///
/// \param NumNodes number of nodes; nodes are identified by [0, NumNodes).
/// \param Successors callback yielding the successor list of a node.
inline SCCResult computeSCCs(
    unsigned NumNodes,
    const std::function<const std::vector<unsigned> &(unsigned)> &Successors) {
  SCCResult Result;
  Result.ComponentOf.assign(NumNodes, ~0u);

  constexpr unsigned Undefined = ~0u;
  std::vector<unsigned> Index(NumNodes, Undefined);
  std::vector<unsigned> LowLink(NumNodes, Undefined);
  std::vector<bool> OnStack(NumNodes, false);
  std::vector<unsigned> Stack;
  unsigned NextIndex = 0;

  // Explicit DFS frames: (node, next successor position).
  struct Frame {
    unsigned Node;
    size_t SuccPos;
  };
  std::vector<Frame> DFS;

  for (unsigned Root = 0; Root < NumNodes; ++Root) {
    if (Index[Root] != Undefined)
      continue;

    DFS.push_back({Root, 0});
    Index[Root] = LowLink[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = true;

    while (!DFS.empty()) {
      Frame &F = DFS.back();
      const std::vector<unsigned> &Succs = Successors(F.Node);
      if (F.SuccPos < Succs.size()) {
        unsigned Succ = Succs[F.SuccPos++];
        assert(Succ < NumNodes && "successor id out of range");
        if (Index[Succ] == Undefined) {
          Index[Succ] = LowLink[Succ] = NextIndex++;
          Stack.push_back(Succ);
          OnStack[Succ] = true;
          DFS.push_back({Succ, 0});
        } else if (OnStack[Succ]) {
          if (Index[Succ] < LowLink[F.Node])
            LowLink[F.Node] = Index[Succ];
        }
        continue;
      }

      // Node finished: pop a component if this is an SCC root.
      unsigned Node = F.Node;
      DFS.pop_back();
      if (!DFS.empty()) {
        unsigned Parent = DFS.back().Node;
        if (LowLink[Node] < LowLink[Parent])
          LowLink[Parent] = LowLink[Node];
      }
      if (LowLink[Node] != Index[Node])
        continue;

      std::vector<unsigned> Component;
      while (true) {
        unsigned Member = Stack.back();
        Stack.pop_back();
        OnStack[Member] = false;
        Result.ComponentOf[Member] =
            static_cast<unsigned>(Result.Components.size());
        Component.push_back(Member);
        if (Member == Node)
          break;
      }
      Result.Components.push_back(std::move(Component));
    }
  }
  return Result;
}

} // namespace psc

#endif // PSPDG_SUPPORT_SCCITERATOR_H
