//===- pscd.cpp - resident analysis service daemon ----------------*- C++ -*-===//
///
/// \file
/// `pscd --socket=/path.sock` binds the unix-domain socket, serves
/// concurrent compile→plan→run sessions (see service/Server.h), and
/// exits when a client sends `op=shutdown` (or on SIGINT/SIGTERM).
/// `pscc --connect=/path.sock` is the matching client.
///
///   --socket=PATH        socket path (required)
///   --threads=N          session-stage worker threads (default 4)
///   --module-cache=N     L1 compiled-module cache entries (default 64)
///   --memo-cache=N       L2 dependence-memo cache entries (default 256)
///   --plan-cache=N       L3 plan-line cache entries (default 512)
///   --shards=N           profile-store shards (default 16)
///   --budget-pool=N      server-wide instruction-budget pool
///   --trace-dir=DIR      write one Chrome-trace file per session
///                        (DIR/session-<id>.json; arms the recorder)
///   --metrics-out=FILE   write the Prometheus metrics exposition to
///                        FILE at shutdown (the `metrics` op serves the
///                        same text live)
///   --slow-ms=X          log (stderr) and count sessions slower than X
///                        milliseconds (the slow-session log; 0 = off)
///   --target-p99-ms=X    SLO: p99 session latency the `health` op
///                        grades against (default 250)
///   --min-cache-hit=X    SLO: minimum hit rate [0,1] each warm cache
///                        level must sustain (default 0 = accept all)
///   --max-error-rate=X   SLO: maximum session error rate [0,1]
///                        (default 0.05)
///
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace psc::service;

namespace {

Server *ActiveServer = nullptr;

void onSignal(int) {
  // stop() is not async-signal-safe in general, but pscd is single-purpose:
  // the alternative (a self-pipe) buys nothing for a dev-tool daemon.
  if (ActiveServer)
    ActiveServer->stop();
}

int usage() {
  std::fprintf(stderr,
               "usage: pscd --socket=PATH [--threads=N] [--module-cache=N]\n"
               "            [--memo-cache=N] [--plan-cache=N] [--shards=N]\n"
               "            [--budget-pool=N] [--trace-dir=DIR]\n"
               "            [--metrics-out=FILE] [--slow-ms=X]\n"
               "            [--target-p99-ms=X] [--min-cache-hit=X]\n"
               "            [--max-error-rate=X]\n");
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  ServerConfig C;
  std::string MetricsOut;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Val = [&A](size_t Prefix) { return A.substr(Prefix); };
    if (A.rfind("--socket=", 0) == 0)
      C.SocketPath = Val(9);
    else if (A.rfind("--trace-dir=", 0) == 0)
      C.TraceDir = Val(12);
    else if (A.rfind("--metrics-out=", 0) == 0)
      MetricsOut = Val(14);
    else if (A.rfind("--threads=", 0) == 0)
      C.PoolThreads = static_cast<unsigned>(std::atoi(Val(10).c_str()));
    else if (A.rfind("--module-cache=", 0) == 0)
      C.ModuleCacheCap = static_cast<size_t>(std::atoll(Val(15).c_str()));
    else if (A.rfind("--memo-cache=", 0) == 0)
      C.MemoCacheCap = static_cast<size_t>(std::atoll(Val(12).c_str()));
    else if (A.rfind("--plan-cache=", 0) == 0)
      C.PlanCacheCap = static_cast<size_t>(std::atoll(Val(13).c_str()));
    else if (A.rfind("--shards=", 0) == 0)
      C.ProfileShards = static_cast<unsigned>(std::atoi(Val(9).c_str()));
    else if (A.rfind("--budget-pool=", 0) == 0)
      C.BudgetPool = std::strtoull(Val(14).c_str(), nullptr, 10);
    else if (A.rfind("--slow-ms=", 0) == 0)
      C.SlowSessionMs = std::atof(Val(10).c_str());
    else if (A.rfind("--target-p99-ms=", 0) == 0)
      C.TargetP99Ms = std::atof(Val(16).c_str());
    else if (A.rfind("--min-cache-hit=", 0) == 0)
      C.MinCacheHitRate = std::atof(Val(16).c_str());
    else if (A.rfind("--max-error-rate=", 0) == 0)
      C.MaxErrorRate = std::atof(Val(17).c_str());
    else
      return usage();
  }
  if (C.SocketPath.empty())
    return usage();

  Server S(C);
  std::string Err;
  if (!S.start(Err)) {
    std::fprintf(stderr, "%s\n", Err.c_str());
    return 1;
  }
  ActiveServer = &S;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::fprintf(stderr, "pscd: serving on %s (%u workers)\n",
               C.SocketPath.c_str(), S.config().PoolThreads);
  S.waitForShutdown();
  if (!MetricsOut.empty()) {
    std::FILE *F = std::fopen(MetricsOut.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "pscd: cannot write %s\n", MetricsOut.c_str());
    } else {
      std::string Text = S.metricsText();
      std::fwrite(Text.data(), 1, Text.size(), F);
      std::fclose(F);
    }
  }
  S.stop();
  ActiveServer = nullptr;
  std::fprintf(stderr, "pscd: shut down\n");
  return 0;
}
