//===- pscc.cpp - PSC compiler driver ------------------------------*- C++ -*-===//
///
/// \file
/// Command-line driver over the whole stack: compile a PSC source file (or
/// a built-in benchmark) and inspect every stage.
///
///   pscc [options] <file.psc | benchmark-name>
///     --emit-ir            print the textual IR
///     --emit-pdg           print the classic PDG as DOT
///     --emit-pspdg         print the PS-PDG as DOT
///     --summary            print the PS-PDG summary line
///     --fingerprint        print the canonical PS-PDG fingerprint hash
///     --plans[=ABS]        per-loop plan table (abs: openmp|pdg|jk|pspdg)
///     --options[=ABS]      Fig. 13 option totals for one abstraction
///     --critical-path      Fig. 14 critical paths under all abstractions
///     --run                execute and print output
///     --run-parallel[=ABS] execute the abstraction's best plan on real
///                          threads (abs: pdg|jk|pspdg; default pspdg) and
///                          report per-loop schedules + speedup on stderr
///     --exec=ENGINE        execution engine: bytecode (pre-decoded flat
///                          instruction stream; default) or walker (the
///                          tree-walking golden reference)
///     --threads=N          worker threads for --run-parallel (default 8)
///     --grain=MODE         parallel-grain control for --run-parallel:
///                          auto (default; cost-model demotion of loops
///                          below parallel grain + DOALL chunk sizing,
///                          calibrated for this machine), off (purely
///                          validity-driven schedules), or a number N
///                          (force DOALL chunk size N, no demotion)
///     --without=FEAT[,..]  ablate PS-PDG features (hn, nt, c, dsde, psv)
///     --dep-oracles=LIST   dependence-oracle chain, in order (default:
///                          ssa,control,io,opaque,alias,affine; append
///                          'spec' with --spec-profile for speculation)
///     --dep-stats          run the analysis bundle and report per-oracle
///                          query/disproof counts + cache hit rate
///     --profile-out=FILE   run the program once (on --exec's engine) with
///                          the dependence profiler and write the
///                          manifestation + value profile as JSON
///     --spec-profile=FILE  training profile backing the speculative
///                          oracles (enables both 'spec' and 'valuespec'
///                          unless --dep-oracles names a subset)
///     --profile-report     cross-reference the program's loops against
///                          --spec-profile: observation coverage, manifest
///                          density, value classes, speculation history —
///                          unobserved (unspeculatable) loops made visible
///     --spec-feedback=FILE after --run-parallel, fold each speculative
///                          loop's attempts/misspeculations back into the
///                          --spec-profile document and write it to FILE
///                          (feeds speculation-aware plan selection)
///     --merge-profiles=OUT merge the positional profile files into OUT
///                          (no program is compiled in this mode)
///     --serve=SOCK         run the resident analysis service on a
///                          unix-domain socket (in-process pscd); serves
///                          concurrent compile→plan→run sessions with
///                          cross-request caching until a client sends
///                          shutdown
///     --connect=SOCK       client mode: ship the input source to a
///                          resident server as one session instead of
///                          compiling locally (--plans → analyze,
///                          --run → run, both/neither → full; with
///                          --spec-profile the profile is streamed into
///                          the server's store first and the session
///                          plans speculatively against it)
///     --stats              with --connect: print the server's
///                          observability snapshot (latency percentiles,
///                          sessions/s, cache hit rates, profile-store
///                          shard occupancy) as JSON
///     --shutdown           with --connect: ask the server to exit
///     --trace-out=FILE     record Chrome-trace events for this invocation
///                          (compile/analysis/plan/run spans, per-worker
///                          chunk/gate/stage events, misspeculation and
///                          cache instants) and write the JSON to FILE
///     --misspec-out=FILE   write the misspeculation flight recorder's
///                          forensic records (violated assumption with
///                          oracle provenance, conflicting access pair,
///                          watch-set snapshot, plan identity, rollback
///                          cost) as a .psc-misspec.json artifact; empty
///                          runs still write the (empty) envelope
///     --explain[=LOOP]     per-loop plan-decision report: candidate
///                          schedules tried, the oracle whose verdict kept
///                          each blocking dependence, speculative
///                          assumptions, cost-model numbers, and grain
///                          demotions; LOOP filters by "@fn header"
///                          substring (with --connect: served explain op,
///                          byte-identical output)
///
//===----------------------------------------------------------------------===//

#include "analysis/DepOracle.h"
#include "analysis/ValueSpec.h"
#include "emulator/CriticalPath.h"
#include "frontend/Frontend.h"
#include "obs/Forensics.h"
#include "obs/PlanDecision.h"
#include "obs/Trace.h"
#include "parallel/PlanEnumerator.h"
#include "parallel/PlanLines.h"
#include "pdg/PDG.h"
#include "profiling/DepProfiler.h"
#include "pspdg/Fingerprint.h"
#include "pspdg/PSPDGBuilder.h"
#include "runtime/ParallelRuntime.h"
#include "service/Client.h"
#include "service/Server.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <thread>
#include <cstdio>
#include <memory>
#include <vector>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace psc;

namespace {

struct Options {
  std::string Input;
  std::vector<std::string> ExtraInputs; ///< --merge-profiles operands.
  bool EmitIR = false, EmitPDG = false, EmitPSPDG = false;
  bool Summary = false, Fingerprint = false, Run = false;
  bool Plans = false, CountOptions = false, CriticalPath = false;
  bool RunParallel = false;
  bool DepStats = false;
  bool ProfileReport = false;
  std::vector<std::string> DepOracles;
  std::string ProfileOut;
  std::string SpecProfilePath;
  std::string SpecFeedbackOut;
  std::string MergeProfilesOut;
  std::string ServeSocket;   ///< --serve: run the resident service.
  std::string ConnectSocket; ///< --connect: session against a server.
  bool Stats = false;        ///< --connect --stats: observability JSON.
  bool Shutdown = false;     ///< --connect --shutdown: stop the server.
  std::string TraceOut;      ///< --trace-out: Chrome-trace JSON file.
  std::string MisspecOut;    ///< --misspec-out: flight-recorder artifact.
  bool Explain = false;      ///< --explain: plan-decision report.
  std::string ExplainLoop;   ///< --explain=loop: substring filter.
  ExecEngineKind Engine = ExecEngineKind::Bytecode;
  unsigned Threads = 8;
  std::string Grain = "auto"; ///< --grain: auto | off | <chunk>.
  AbstractionKind Abs = AbstractionKind::PSPDG;
  AbstractionKind RunAbs = AbstractionKind::PSPDG;
  FeatureSet Features;
};

AbstractionKind parseAbs(const std::string &S) {
  if (S == "openmp")
    return AbstractionKind::OpenMP;
  if (S == "pdg")
    return AbstractionKind::PDG;
  if (S == "jk")
    return AbstractionKind::JK;
  return AbstractionKind::PSPDG;
}

/// GrainConfig from --grain/--threads; shared by --run-parallel and
/// --explain so the explained plan is the executed plan.
GrainConfig makeGrain(const Options &O) {
  GrainConfig Grain;
  if (O.Grain == "auto") {
    Grain.Enabled = true;
    unsigned HW = std::thread::hardware_concurrency();
    Grain.Workers = std::min(O.Threads, HW == 0 ? O.Threads : HW);
  } else if (O.Grain != "off") {
    Grain.Enabled = true;
    Grain.ForcedChunk = std::atol(O.Grain.c_str());
  }
  return Grain;
}

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--emit-ir")
      O.EmitIR = true;
    else if (A == "--emit-pdg")
      O.EmitPDG = true;
    else if (A == "--emit-pspdg")
      O.EmitPSPDG = true;
    else if (A == "--summary")
      O.Summary = true;
    else if (A == "--fingerprint")
      O.Fingerprint = true;
    else if (A == "--run")
      O.Run = true;
    else if (A == "--critical-path")
      O.CriticalPath = true;
    else if (A == "--dep-stats")
      O.DepStats = true;
    else if (A == "--profile-report")
      O.ProfileReport = true;
    else if (A.rfind("--profile-out=", 0) == 0)
      O.ProfileOut = A.substr(14);
    else if (A.rfind("--spec-profile=", 0) == 0)
      O.SpecProfilePath = A.substr(15);
    else if (A.rfind("--spec-feedback=", 0) == 0)
      O.SpecFeedbackOut = A.substr(16);
    else if (A.rfind("--merge-profiles=", 0) == 0)
      O.MergeProfilesOut = A.substr(17);
    else if (A.rfind("--serve=", 0) == 0)
      O.ServeSocket = A.substr(8);
    else if (A.rfind("--connect=", 0) == 0)
      O.ConnectSocket = A.substr(10);
    else if (A == "--stats")
      O.Stats = true;
    else if (A == "--shutdown")
      O.Shutdown = true;
    else if (A.rfind("--trace-out=", 0) == 0)
      O.TraceOut = A.substr(12);
    else if (A.rfind("--misspec-out=", 0) == 0)
      O.MisspecOut = A.substr(14);
    else if (A.rfind("--explain", 0) == 0 &&
             (A.size() == 9 || A[9] == '=')) {
      O.Explain = true;
      if (A.size() > 10)
        O.ExplainLoop = A.substr(10);
    }
    else if (A.rfind("--dep-oracles=", 0) == 0) {
      std::stringstream SS(A.substr(14));
      std::string Tok;
      while (std::getline(SS, Tok, ',')) {
        if (!isKnownDepOracleName(Tok) && Tok != specOracleName() &&
            Tok != valueSpecOracleName()) {
          std::string Known;
          for (const std::string &N : knownDepOracleNames())
            Known += (Known.empty() ? "" : ", ") + N;
          Known += std::string(", ") + specOracleName();
          Known += std::string(", ") + valueSpecOracleName();
          std::fprintf(stderr,
                       "pscc: unknown dependence oracle '%s' (known: %s)\n",
                       Tok.c_str(), Known.c_str());
          return false;
        }
        for (const std::string &Prev : O.DepOracles)
          if (Prev == Tok) {
            std::fprintf(stderr,
                         "pscc: duplicate dependence oracle '%s' (a later "
                         "instance could never answer)\n",
                         Tok.c_str());
            return false;
          }
        O.DepOracles.push_back(Tok);
      }
      if (O.DepOracles.empty()) {
        std::fprintf(stderr, "pscc: --dep-oracles needs at least one name\n");
        return false;
      }
    }
    else if (A.rfind("--run-parallel", 0) == 0) {
      O.RunParallel = true;
      if (A.size() > 15 && A[14] == '=') {
        std::string Abs = A.substr(15);
        if (Abs == "pdg")
          O.RunAbs = AbstractionKind::PDG;
        else if (Abs == "jk")
          O.RunAbs = AbstractionKind::JK;
        else if (Abs == "pspdg")
          O.RunAbs = AbstractionKind::PSPDG;
        else if (Abs == "openmp") {
          std::fprintf(stderr,
                       "pscc: OpenMP has no compiler plan view to execute; "
                       "use pdg, jk, or pspdg\n");
          return false;
        } else {
          std::fprintf(stderr,
                       "pscc: unknown abstraction '%s' for --run-parallel; "
                       "use pdg, jk, or pspdg\n",
                       Abs.c_str());
          return false;
        }
      }
    } else if (A.rfind("--exec=", 0) == 0) {
      std::string E = A.substr(7);
      if (E == "walker")
        O.Engine = ExecEngineKind::Walker;
      else if (E == "bytecode")
        O.Engine = ExecEngineKind::Bytecode;
      else {
        std::fprintf(stderr,
                     "pscc: unknown engine '%s' for --exec; use walker or "
                     "bytecode\n",
                     E.c_str());
        return false;
      }
    } else if (A.rfind("--threads=", 0) == 0) {
      long N = std::atol(A.c_str() + 10);
      if (N <= 0 || N > 4096) {
        std::fprintf(stderr, "pscc: --threads must be in [1, 4096]\n");
        return false;
      }
      O.Threads = static_cast<unsigned>(N);
    } else if (A.rfind("--grain=", 0) == 0) {
      O.Grain = A.substr(8);
      if (O.Grain != "auto" && O.Grain != "off") {
        long N = std::atol(O.Grain.c_str());
        if (N <= 0) {
          std::fprintf(stderr,
                       "pscc: --grain must be auto, off, or a chunk size\n");
          return false;
        }
      }
    } else if (A.rfind("--plans", 0) == 0) {
      O.Plans = true;
      if (A.size() > 8)
        O.Abs = parseAbs(A.substr(8));
    } else if (A.rfind("--options", 0) == 0) {
      O.CountOptions = true;
      if (A.size() > 10)
        O.Abs = parseAbs(A.substr(10));
    } else if (A.rfind("--without=", 0) == 0) {
      std::stringstream SS(A.substr(10));
      std::string Tok;
      while (std::getline(SS, Tok, ',')) {
        if (Tok == "hn")
          O.Features.HierarchicalNodesAndUndirectedEdges = false;
        else if (Tok == "nt")
          O.Features.NodeTraits = false;
        else if (Tok == "c")
          O.Features.Contexts = false;
        else if (Tok == "dsde")
          O.Features.DataSelectors = false;
        else if (Tok == "psv")
          O.Features.ParallelVariables = false;
        else {
          std::fprintf(stderr, "pscc: unknown feature '%s'\n", Tok.c_str());
          return false;
        }
      }
    } else if (A[0] == '-') {
      std::fprintf(stderr, "pscc: unknown option '%s'\n", A.c_str());
      return false;
    } else if (O.Input.empty()) {
      O.Input = A;
    } else {
      O.ExtraInputs.push_back(A);
    }
  }
  if (!O.ExtraInputs.empty() && O.MergeProfilesOut.empty()) {
    std::fprintf(stderr, "pscc: multiple inputs only make sense with "
                         "--merge-profiles\n");
    return false;
  }
  // --spec-profile without explicit stage names enables BOTH speculative
  // downgrade stages (spec + valuespec; the DepOracleConfig default);
  // naming a stage without a profile is an error (absence of training data
  // is never a license to speculate). Naming a subset with a profile
  // enables exactly that subset — the ablation surface.
  bool NamesSpecStage = false;
  for (const std::string &N : O.DepOracles)
    NamesSpecStage |= N == specOracleName() || N == valueSpecOracleName();
  if (NamesSpecStage && O.SpecProfilePath.empty()) {
    std::fprintf(stderr, "pscc: the speculative oracles need "
                         "--spec-profile=<file>\n");
    return false;
  }
  if (O.ProfileReport && O.SpecProfilePath.empty()) {
    std::fprintf(stderr,
                 "pscc: --profile-report needs --spec-profile=<file>\n");
    return false;
  }
  if (!O.SpecFeedbackOut.empty() &&
      (O.SpecProfilePath.empty() || !O.RunParallel)) {
    std::fprintf(stderr, "pscc: --spec-feedback needs --spec-profile and "
                         "--run-parallel\n");
    return false;
  }
  if ((O.Stats || O.Shutdown) && O.ConnectSocket.empty()) {
    std::fprintf(stderr,
                 "pscc: --stats/--shutdown need --connect=<socket>\n");
    return false;
  }
  if (!O.ServeSocket.empty() && !O.ConnectSocket.empty()) {
    std::fprintf(stderr, "pscc: --serve and --connect are exclusive\n");
    return false;
  }
  // The server takes no input program; a stats/shutdown-only client
  // request doesn't either.
  if (!O.ServeSocket.empty())
    return true;
  if (!O.ConnectSocket.empty() && (O.Stats || O.Shutdown))
    return true;
  return !O.Input.empty();
}

std::string loadInput(const std::string &Input, std::string &Name) {
  if (const Workload *W = findWorkload(Input)) {
    Name = W->Name;
    return W->Source;
  }
  std::ifstream In(Input);
  if (!In) {
    std::fprintf(stderr, "pscc: cannot open '%s'\n", Input.c_str());
    return "";
  }
  Name = Input;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O)) {
    std::fprintf(
        stderr,
        "usage: pscc [--emit-ir] [--emit-pdg] [--emit-pspdg] [--summary]\n"
        "            [--fingerprint] [--plans[=abs]] [--options[=abs]]\n"
        "            [--critical-path] [--run] [--run-parallel[=abs]]\n"
        "            [--exec=walker|bytecode] [--threads=N]\n"
        "            [--grain=auto|off|N]\n"
        "            [--without=feat,...]\n"
        "            [--dep-oracles=name,...] [--dep-stats]\n"
        "            [--profile-out=file] [--spec-profile=file]\n"
        "            [--profile-report] [--spec-feedback=file]\n"
        "            [--merge-profiles=out in1.json in2.json ...]\n"
        "            [--serve=sock | --connect=sock [--stats] [--shutdown]]\n"
        "            [--trace-out=file] [--misspec-out=file]\n"
        "            [--explain[=loop]]\n"
        "            <file.psc | BT|CG|EP|FT|IS|LU|MG|SP|UA|RX>\n");
    return 2;
  }

  // Tracing covers the whole invocation; the JSON is written on every
  // exit path by this RAII guard.
  struct TraceGuard {
    std::string Path;
    ~TraceGuard() {
      if (Path.empty())
        return;
      std::string Err;
      if (!obs::traceWrite(Path, {{"tool", "pscc"}}, Err))
        std::fprintf(stderr, "pscc: %s\n", Err.c_str());
    }
  } Trace;
  if (!O.TraceOut.empty()) {
    obs::traceEnable();
    Trace.Path = O.TraceOut;
  }

  // Flight-recorder artifact: written on every exit path, even with an
  // empty ring — CI distinguishes "no misspeculation" from "no file".
  struct MisspecGuard {
    std::string Path;
    ~MisspecGuard() {
      if (Path.empty())
        return;
      std::ofstream Out(Path);
      if (!Out) {
        std::fprintf(stderr, "pscc: cannot write %s\n", Path.c_str());
        return;
      }
      Out << obs::renderMisspecArtifact("pscc");
    }
  } Misspec;
  if (!O.MisspecOut.empty()) {
    obs::misspecClear();
    Misspec.Path = O.MisspecOut;
  }

  // Resident-service server mode: pscd in-process.
  if (!O.ServeSocket.empty()) {
    service::ServerConfig SC;
    SC.SocketPath = O.ServeSocket;
    SC.PoolThreads = O.Threads;
    service::Server S(SC);
    std::string Err;
    if (!S.start(Err)) {
      std::fprintf(stderr, "pscc: %s\n", Err.c_str());
      return 1;
    }
    std::fprintf(stderr, "pscc: serving on %s (%u workers)\n",
                 SC.SocketPath.c_str(), O.Threads);
    S.waitForShutdown();
    S.stop();
    return 0;
  }

  // Client mode: run this invocation as a session on a resident server.
  if (!O.ConnectSocket.empty()) {
    service::Client Cl;
    std::string Err;
    if (!Cl.connect(O.ConnectSocket, Err)) {
      std::fprintf(stderr, "pscc: %s\n", Err.c_str());
      return 1;
    }
    auto roundTrip = [&](const service::Message &Req,
                         service::Message &Resp) -> bool {
      if (!Cl.request(Req, Resp, Err)) {
        std::fprintf(stderr, "pscc: %s\n", Err.c_str());
        return false;
      }
      if (service::field(Resp, "ok") != "1") {
        std::fprintf(stderr, "pscc: server: %s\n",
                     service::field(Resp, "error").c_str());
        return false;
      }
      return true;
    };
    int Exit = 0;
    if (!O.Input.empty()) {
      std::string Name;
      std::string Source = loadInput(O.Input, Name);
      if (Source.empty())
        return 1;
      bool Spec = !O.SpecProfilePath.empty();
      if (Spec) {
        // Stream the local training profile into the server's sharded
        // store, then plan speculatively against it.
        std::ifstream In(O.SpecProfilePath);
        if (!In) {
          std::fprintf(stderr, "pscc: cannot open '%s'\n",
                       O.SpecProfilePath.c_str());
          return 1;
        }
        std::ostringstream SS;
        SS << In.rdbuf();
        service::Message MResp;
        if (!roundTrip({{"op", "profile-merge"}, {"profile", SS.str()}},
                       MResp))
          return 1;
      }
      if (O.Explain) {
        // Served plan-decision report: byte-identical to the standalone
        // `pscc --explain` rendering (one shared renderer).
        service::Message Req{
            {"op", "explain"},
            {"source", Source},
            {"name", Name},
            {"threads", std::to_string(O.Threads)},
            {"grain", O.Grain},
            {"abs", O.RunAbs == AbstractionKind::PDG   ? "pdg"
                    : O.RunAbs == AbstractionKind::JK ? "jk"
                                                       : "pspdg"},
        };
        if (Spec)
          Req["spec"] = "1";
        if (!O.ExplainLoop.empty())
          Req["loop"] = O.ExplainLoop;
        service::Message Resp;
        if (!roundTrip(Req, Resp))
          return 1;
        std::fputs(service::field(Resp, "explain").c_str(), stdout);
      } else {
        service::Message Req{
            {"op", "session"},
            {"source", Source},
            {"name", Name},
            {"engine", O.Engine == ExecEngineKind::Walker ? "walker"
                                                          : "bytecode"},
        };
        if (O.Plans && !O.Run)
          Req["mode"] = "analyze";
        else if (O.Run && !O.Plans)
          Req["mode"] = "run";
        else
          Req["mode"] = "full";
        if (O.Plans)
          Req["abs"] = O.Abs == AbstractionKind::PDG   ? "pdg"
                       : O.Abs == AbstractionKind::JK ? "jk"
                                                       : "pspdg";
        if (Spec)
          Req["spec"] = "1";
        service::Message Resp;
        if (!roundTrip(Req, Resp))
          return 1;
        std::fputs(service::field(Resp, "plans").c_str(), stdout);
        std::fputs(service::field(Resp, "output").c_str(), stdout);
        if (service::field(Resp, "completed") == "0")
          std::fprintf(stderr, "pscc: instruction budget exhausted\n");
        if (Resp.count("exit"))
          Exit = std::atoi(Resp.at("exit").c_str());
      }
    }
    if (O.Stats) {
      service::Message Resp;
      if (!roundTrip({{"op", "stats"}}, Resp))
        return 1;
      std::printf("%s\n", service::field(Resp, "json").c_str());
    }
    if (O.Shutdown) {
      service::Message Resp;
      if (!roundTrip({{"op", "shutdown"}}, Resp))
        return 1;
    }
    return Exit;
  }

  // Profile merge mode: no program, just profile files.
  if (!O.MergeProfilesOut.empty()) {
    DepProfile Merged;
    std::vector<std::string> Inputs = O.ExtraInputs;
    Inputs.insert(Inputs.begin(), O.Input);
    for (const std::string &Path : Inputs) {
      DepProfile P;
      std::string Err;
      if (!DepProfile::loadFile(Path, P, Err)) {
        std::fprintf(stderr, "pscc: %s\n", Err.c_str());
        return 1;
      }
      Merged.merge(P);
    }
    std::string Err;
    if (!Merged.saveFile(O.MergeProfilesOut, Err)) {
      std::fprintf(stderr, "pscc: %s\n", Err.c_str());
      return 1;
    }
    std::fprintf(stderr, "pscc: merged %zu profile%s into %s\n",
                 Inputs.size(), Inputs.size() == 1 ? "" : "s",
                 O.MergeProfilesOut.c_str());
    return 0;
  }

  // Training profile for the spec oracle; must outlive every stack below.
  DepProfile SpecProfile;
  if (!O.SpecProfilePath.empty()) {
    std::string Err;
    if (!DepProfile::loadFile(O.SpecProfilePath, SpecProfile, Err)) {
      std::fprintf(stderr, "pscc: %s\n", Err.c_str());
      return 1;
    }
  }
  DepOracleConfig OracleCfg(
      O.DepOracles, O.SpecProfilePath.empty() ? nullptr : &SpecProfile);

  std::string Name;
  std::string Source = loadInput(O.Input, Name);
  if (Source.empty())
    return 1;

  CompileResult R = compileSource(Source, Name);
  if (!R.ok()) {
    for (const std::string &D : R.Diagnostics)
      std::fprintf(stderr, "%s: %s\n", Name.c_str(), D.c_str());
    return 1;
  }
  Module &M = *R.M;

  if (O.EmitIR)
    std::printf("%s", M.str().c_str());

  // Per-function analysis contexts: one FunctionAnalysis plus one shared
  // dependence-oracle stack per defined function. Every stage below issues
  // its queries through the same stack, so the memoizing cache collaborates
  // across consumers (PDG dump, PS-PDG build, plan views, --dep-stats).
  struct FnCtx {
    const Function *F = nullptr;
    std::unique_ptr<FunctionAnalysis> FA;
    std::unique_ptr<DepOracleStack> Stack;
  };
  std::vector<FnCtx> Ctxs;
  bool NeedCtxs = O.EmitPDG || O.EmitPSPDG || O.Summary || O.Fingerprint ||
                  O.Plans || O.DepStats || O.ProfileReport;
  if (NeedCtxs)
    for (const auto &F : M.functions()) {
      if (F->isDeclaration())
        continue;
      FnCtx C;
      C.F = F.get();
      C.FA = std::make_unique<FunctionAnalysis>(*F);
      C.Stack = std::make_unique<DepOracleStack>(*C.FA, OracleCfg);
      Ctxs.push_back(std::move(C));
    }

  // Per-function graph dumps.
  if (O.EmitPDG || O.EmitPSPDG || O.Summary || O.Fingerprint)
    for (FnCtx &C : Ctxs) {
      if (O.EmitPDG) {
        PDG G(*C.FA, *C.Stack);
        std::printf("// PDG of @%s\n%s", C.F->getName().c_str(),
                    G.toDot().c_str());
      }
      if (O.EmitPSPDG || O.Summary || O.Fingerprint) {
        auto G = buildPSPDG(*C.FA, *C.Stack, O.Features);
        if (O.Summary)
          std::printf("@%s: %s\n", C.F->getName().c_str(),
                      G->summary().c_str());
        if (O.Fingerprint)
          std::printf("@%s: fingerprint %016llx\n", C.F->getName().c_str(),
                      (unsigned long long)fingerprintHash(*G));
        if (O.EmitPSPDG)
          std::printf("// PS-PDG of @%s\n%s", C.F->getName().c_str(),
                      G->toDot().c_str());
      }
    }

  if (O.Plans) {
    for (FnCtx &C : Ctxs) {
      FunctionAnalysis &FA = *C.FA;
      if (FA.loopInfo().loops().empty())
        continue;
      std::unique_ptr<PSPDG> G;
      if (O.Abs == AbstractionKind::PSPDG)
        G = buildPSPDG(FA, *C.Stack, O.Features);
      if (O.Abs == AbstractionKind::OpenMP) {
        std::printf("(OpenMP has no compiler plan view; see --options)\n");
        break;
      }
      AbstractionView V(O.Abs, FA, *C.Stack, G.get());
      std::fputs(renderPlanLines(FA, V).c_str(), stdout);
    }
  }

  if (O.DepStats) {
    // The standard analysis bundle: the PDG baseline edge set, the PS-PDG,
    // and the J&K view all issue their queries through the shared stack, so
    // the stats below reflect a realistic multi-consumer run (the second
    // and third builds are served by the cache).
    for (FnCtx &C : Ctxs) {
      (void)buildDepEdges(*C.Stack);
      auto G = buildPSPDG(*C.FA, *C.Stack, O.Features);
      AbstractionView V(AbstractionKind::JK, *C.FA, *C.Stack);
      (void)V;
    }
    // Aggregate per-oracle counters across functions (all stacks share one
    // chain configuration, so rows line up).
    std::vector<DepOracleStack::OracleStats> Agg;
    DepOracleStack::CacheStats Cache;
    for (FnCtx &C : Ctxs) {
      auto Stats = C.Stack->oracleStats();
      if (Agg.empty())
        Agg.resize(Stats.size());
      for (size_t I = 0; I < Stats.size(); ++I) {
        Agg[I].Name = Stats[I].Name;
        Agg[I].Answered += Stats[I].Answered;
        Agg[I].NoDep += Stats[I].NoDep;
        Agg[I].MayDep += Stats[I].MayDep;
        Agg[I].MustDep += Stats[I].MustDep;
      }
      const auto &CS = C.Stack->cacheStats();
      Cache.Queries += CS.Queries;
      Cache.Hits += CS.Hits;
      Cache.Fallback += CS.Fallback;
    }
    std::printf("== dependence-oracle stats (%zu function%s) ==\n",
                Ctxs.size(), Ctxs.size() == 1 ? "" : "s");
    for (const auto &S : Agg)
      std::printf("dep-oracle %-8s answered=%llu nodep=%llu maydep=%llu "
                  "mustdep=%llu\n",
                  S.Name, (unsigned long long)S.Answered,
                  (unsigned long long)S.NoDep, (unsigned long long)S.MayDep,
                  (unsigned long long)S.MustDep);
    std::printf("dep-cache queries=%llu hits=%llu hit-rate=%.1f%% "
                "fallback=%llu\n",
                (unsigned long long)Cache.Queries,
                (unsigned long long)Cache.Hits, 100.0 * Cache.hitRate(),
                (unsigned long long)Cache.Fallback);
  }

  if (O.ProfileReport) {
    // Cross-reference every loop of the program against the training
    // profile: which loops the training inputs observed (and thus license
    // speculation for), how dense the manifested-conflict evidence is, the
    // value classes, and the speculation history — making training *gaps*
    // visible after --merge-profiles.
    unsigned TotalLoops = 0, ObservedLoops = 0;
    std::printf("== profile report (%s) ==\n", O.SpecProfilePath.c_str());
    for (FnCtx &C : Ctxs) {
      const Function *F = C.F;
      const FunctionAnalysis &FA = *C.FA;
      if (FA.loopInfo().loops().empty())
        continue;
      unsigned NumInsts = static_cast<unsigned>(FA.instructions().size());
      uint64_t Hash = functionBodyHash(*F);
      auto FIt = SpecProfile.Functions.find(F->getName());
      bool Stale =
          FIt != SpecProfile.Functions.end() &&
          (FIt->second.NumInstructions != NumInsts ||
           FIt->second.BodyHash != Hash);
      std::printf("@%s: %u instructions%s\n", F->getName().c_str(), NumInsts,
                  Stale ? " — PROFILE STALE (no speculation)"
                        : (FIt == SpecProfile.Functions.end()
                               ? " — not in profile"
                               : ""));
      for (const Loop *L : FA.loopInfo().loops()) {
        ++TotalLoops;
        unsigned H = L->getHeader();
        const char *Name = F->getBlock(H)->getName().c_str();
        if (!SpecProfile.observed(F->getName(), NumInsts, Hash, H)) {
          std::printf("  %-16s depth=%u UNOBSERVED (unspeculatable)\n", Name,
                      L->getDepth());
          continue;
        }
        ++ObservedLoops;
        const auto &LP = FIt->second.Loops.at(H);
        // Manifest density: manifested pairs over the loop's static
        // access-instruction count (the worst-case pair space scales with
        // its square), plus how many access sites training reached.
        unsigned StaticAccesses = 0;
        for (unsigned BI : L->blocks())
          for (const Instruction *I : *F->getBlock(BI))
            if (isa<LoadInst>(I) || isa<StoreInst>(I))
              ++StaticAccesses;
        std::printf("  %-16s depth=%u observed: invocations=%llu "
                    "iterations=%llu manifested=%zu accessed=%zu/%u",
                    Name, L->getDepth(),
                    (unsigned long long)LP.Invocations,
                    (unsigned long long)LP.Iterations, LP.Manifested.size(),
                    LP.Accessed.size(), StaticAccesses);
        if (LP.SpecAttempts || LP.SpecMisspecs)
          std::printf(" spec-history=%llu/%llu",
                      (unsigned long long)LP.SpecMisspecs,
                      (unsigned long long)LP.SpecAttempts);
        std::printf("\n");
        for (const auto &[Var, Obs] : LP.Values) {
          if (Obs.Kind == ValueClassKind::Varying)
            continue;
          std::printf("    value %-12s %s", Var.c_str(),
                      valueClassKindName(Obs.Kind));
          if (Obs.Kind == ValueClassKind::Strided) {
            if (Obs.IsFloat)
              std::printf("(%+g)", Obs.StrideF);
            else
              std::printf("(%+lld)", (long long)Obs.StrideI);
          }
          std::printf(" writes=%llu\n", (unsigned long long)Obs.Writes);
        }
      }
    }
    std::printf("== %u of %u loops observed ==\n", ObservedLoops, TotalLoops);
  }

  if (O.CountOptions) {
    OptionCount C =
        enumerateOptions(M, O.Abs, {}, nullptr, O.Features, OracleCfg);
    std::printf("%s options: %llu over %u loops (%u DOALL)\n",
                abstractionName(O.Abs), (unsigned long long)C.Total,
                C.LoopsConsidered, C.DOALLLoops);
  }

  if (O.Explain) {
    obs::PlanDecisionLog Log;
    (void)buildRuntimePlan(M, O.RunAbs, O.Threads, O.Features, OracleCfg,
                           makeGrain(O), &Log);
    std::fputs(obs::renderDecisionLog(Log, O.ExplainLoop).c_str(), stdout);
  }

  if (O.CriticalPath) {
    CriticalPathReport C =
        evaluateCriticalPaths(M, 2'000'000'000ULL, OracleCfg);
    std::printf("sequential=%llu OpenMP=%.0f PDG=%.0f J&K=%.0f PS-PDG=%.0f\n",
                (unsigned long long)C.TotalDynamicInstructions, C.OpenMP,
                C.PDG, C.JK, C.PSPDG);
  }

  if (!O.ProfileOut.empty()) {
    // Training run: execute once with the dependence profiler attached and
    // serialize what manifested. Engine choice follows --exec (the
    // profiles are engine-identical; the spec differential tests enforce
    // it).
    ModuleAnalyses MA(M);
    DepProfiler Prof(MA);
    Interpreter I(M);
    I.setEngine(O.Engine);
    I.addObserver(&Prof);
    RunResult Run = I.run();
    if (!Run.Completed) {
      std::fprintf(stderr, "pscc: instruction budget exhausted during "
                           "profiling; profile not written\n");
      return 1;
    }
    DepProfile P = Prof.takeProfile();
    std::string Err;
    if (!P.saveFile(O.ProfileOut, Err)) {
      std::fprintf(stderr, "pscc: %s\n", Err.c_str());
      return 1;
    }
    std::fprintf(stderr, "pscc: wrote dependence profile to %s\n",
                 O.ProfileOut.c_str());
    if (!O.Run && !O.RunParallel)
      return 0;
  }

  if (O.Run) {
    Interpreter I(M);
    I.setEngine(O.Engine);
    RunResult Run = I.run();
    for (const std::string &Line : Run.Output)
      std::printf("%s\n", Line.c_str());
    if (!Run.Completed)
      std::fprintf(stderr, "pscc: instruction budget exhausted\n");
    return static_cast<int>(Run.ExitValue);
  }

  if (O.RunParallel) {
    using Clock = std::chrono::steady_clock;
    auto Ms = [](Clock::time_point A, Clock::time_point B) {
      return std::chrono::duration<double, std::milli>(B - A).count();
    };

    Interpreter Seq(M);
    Seq.setEngine(O.Engine);
    Clock::time_point T0 = Clock::now();
    RunResult SeqR = Seq.run();
    Clock::time_point T1 = Clock::now();

    GrainConfig Grain = makeGrain(O);
    RuntimePlan Plan = buildRuntimePlan(M, O.RunAbs, O.Threads, O.Features,
                                        OracleCfg, Grain);
    ParallelRuntime RT(M, Plan, O.Engine);
    Clock::time_point T2 = Clock::now();
    ParallelRunResult Par = RT.run();
    Clock::time_point T3 = Clock::now();

    for (const std::string &Line : Par.R.Output)
      std::printf("%s\n", Line.c_str());

    std::fprintf(stderr, "== %s plan on %u threads (%s engine) ==\n",
                 abstractionName(O.RunAbs), O.Threads,
                 execEngineName(O.Engine));
    for (const LoopExecStat &L : Par.Loops) {
      std::string Spec;
      if (L.Speculative) {
        Spec = " speculative(assumptions=" + std::to_string(L.Assumptions);
        if (L.ValuePreds)
          Spec += " values=" + std::to_string(L.ValuePreds);
        if (L.SpecReductions)
          Spec += " reductions=" + std::to_string(L.SpecReductions);
        Spec += " misspeculations=" + std::to_string(L.Misspeculations) + ")";
      }
      std::fprintf(stderr, "  @%s %-14s depth=%u %-10s invocations=%llu "
                           "iterations=%llu%s%s%s\n",
                   L.F->getName().c_str(),
                   L.F->getBlock(L.Header)->getName().c_str(), L.Depth,
                   scheduleKindName(L.Kind),
                   (unsigned long long)L.Invocations,
                   (unsigned long long)L.Iterations, Spec.c_str(),
                   L.Kind == ScheduleKind::Sequential ? "  // " : "",
                   L.Kind == ScheduleKind::Sequential ? L.Reason.c_str()
                                                      : "");
    }
    double SeqMs = Ms(T0, T1), ParMs = Ms(T2, T3);
    std::fprintf(stderr,
                 "sequential %.2f ms, parallel %.2f ms, speedup %.2fx\n",
                 SeqMs, ParMs, ParMs > 0 ? SeqMs / ParMs : 0.0);

    if (!Par.Error.empty()) {
      std::fprintf(stderr, "pscc: parallel run failed: %s\n",
                   Par.Error.c_str());
      return 1;
    }
    if (!Par.R.Completed)
      std::fprintf(stderr, "pscc: instruction budget exhausted\n");
    if (Par.R.Output != SeqR.Output || Par.R.ExitValue != SeqR.ExitValue) {
      std::fprintf(stderr,
                   "pscc: PARALLEL OUTPUT DIVERGES FROM SEQUENTIAL RUN\n");
      return 1;
    }
    std::fprintf(stderr, "output matches the sequential run\n");

    if (!O.SpecFeedbackOut.empty()) {
      // Fold this run's speculative outcomes back into the profile, so
      // the next plan build can weigh the historical misspeculation rate
      // (speculation-aware plan selection, PlanEnumerator.h). Deliberately
      // AFTER the error/divergence checks: a failed or diverging run must
      // never be recorded as clean speculation history.
      for (const LoopExecStat &L : Par.Loops)
        if (L.Speculative && L.Invocations)
          SpecProfile.recordSpecOutcome(L.F->getName(), L.Header,
                                        L.Invocations, L.Misspeculations);
      std::string Err;
      if (!SpecProfile.saveFile(O.SpecFeedbackOut, Err)) {
        std::fprintf(stderr, "pscc: %s\n", Err.c_str());
        return 1;
      }
      std::fprintf(stderr, "pscc: wrote speculation feedback to %s\n",
                   O.SpecFeedbackOut.c_str());
    }
    return static_cast<int>(Par.R.ExitValue);
  }
  return 0;
}
