//===- pscc.cpp - PSC compiler driver ------------------------------*- C++ -*-===//
///
/// \file
/// Command-line driver over the whole stack: compile a PSC source file (or
/// a built-in benchmark) and inspect every stage.
///
///   pscc [options] <file.psc | benchmark-name>
///     --emit-ir            print the textual IR
///     --emit-pdg           print the classic PDG as DOT
///     --emit-pspdg         print the PS-PDG as DOT
///     --summary            print the PS-PDG summary line
///     --fingerprint        print the canonical PS-PDG fingerprint hash
///     --plans[=ABS]        per-loop plan table (abs: openmp|pdg|jk|pspdg)
///     --options[=ABS]      Fig. 13 option totals for one abstraction
///     --critical-path      Fig. 14 critical paths under all abstractions
///     --run                execute and print output
///     --run-parallel[=ABS] execute the abstraction's best plan on real
///                          threads (abs: pdg|jk|pspdg; default pspdg) and
///                          report per-loop schedules + speedup on stderr
///     --threads=N          worker threads for --run-parallel (default 8)
///     --without=FEAT[,..]  ablate PS-PDG features (hn, nt, c, dsde, psv)
///
//===----------------------------------------------------------------------===//

#include "emulator/CriticalPath.h"
#include "frontend/Frontend.h"
#include "parallel/PlanEnumerator.h"
#include "pdg/PDG.h"
#include "pspdg/Fingerprint.h"
#include "pspdg/PSPDGBuilder.h"
#include "runtime/ParallelRuntime.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace psc;

namespace {

struct Options {
  std::string Input;
  bool EmitIR = false, EmitPDG = false, EmitPSPDG = false;
  bool Summary = false, Fingerprint = false, Run = false;
  bool Plans = false, CountOptions = false, CriticalPath = false;
  bool RunParallel = false;
  unsigned Threads = 8;
  AbstractionKind Abs = AbstractionKind::PSPDG;
  AbstractionKind RunAbs = AbstractionKind::PSPDG;
  FeatureSet Features;
};

AbstractionKind parseAbs(const std::string &S) {
  if (S == "openmp")
    return AbstractionKind::OpenMP;
  if (S == "pdg")
    return AbstractionKind::PDG;
  if (S == "jk")
    return AbstractionKind::JK;
  return AbstractionKind::PSPDG;
}

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--emit-ir")
      O.EmitIR = true;
    else if (A == "--emit-pdg")
      O.EmitPDG = true;
    else if (A == "--emit-pspdg")
      O.EmitPSPDG = true;
    else if (A == "--summary")
      O.Summary = true;
    else if (A == "--fingerprint")
      O.Fingerprint = true;
    else if (A == "--run")
      O.Run = true;
    else if (A == "--critical-path")
      O.CriticalPath = true;
    else if (A.rfind("--run-parallel", 0) == 0) {
      O.RunParallel = true;
      if (A.size() > 15 && A[14] == '=') {
        std::string Abs = A.substr(15);
        if (Abs == "pdg")
          O.RunAbs = AbstractionKind::PDG;
        else if (Abs == "jk")
          O.RunAbs = AbstractionKind::JK;
        else if (Abs == "pspdg")
          O.RunAbs = AbstractionKind::PSPDG;
        else if (Abs == "openmp") {
          std::fprintf(stderr,
                       "pscc: OpenMP has no compiler plan view to execute; "
                       "use pdg, jk, or pspdg\n");
          return false;
        } else {
          std::fprintf(stderr,
                       "pscc: unknown abstraction '%s' for --run-parallel; "
                       "use pdg, jk, or pspdg\n",
                       Abs.c_str());
          return false;
        }
      }
    } else if (A.rfind("--threads=", 0) == 0) {
      long N = std::atol(A.c_str() + 10);
      if (N <= 0 || N > 4096) {
        std::fprintf(stderr, "pscc: --threads must be in [1, 4096]\n");
        return false;
      }
      O.Threads = static_cast<unsigned>(N);
    } else if (A.rfind("--plans", 0) == 0) {
      O.Plans = true;
      if (A.size() > 8)
        O.Abs = parseAbs(A.substr(8));
    } else if (A.rfind("--options", 0) == 0) {
      O.CountOptions = true;
      if (A.size() > 10)
        O.Abs = parseAbs(A.substr(10));
    } else if (A.rfind("--without=", 0) == 0) {
      std::stringstream SS(A.substr(10));
      std::string Tok;
      while (std::getline(SS, Tok, ',')) {
        if (Tok == "hn")
          O.Features.HierarchicalNodesAndUndirectedEdges = false;
        else if (Tok == "nt")
          O.Features.NodeTraits = false;
        else if (Tok == "c")
          O.Features.Contexts = false;
        else if (Tok == "dsde")
          O.Features.DataSelectors = false;
        else if (Tok == "psv")
          O.Features.ParallelVariables = false;
        else {
          std::fprintf(stderr, "pscc: unknown feature '%s'\n", Tok.c_str());
          return false;
        }
      }
    } else if (A[0] == '-') {
      std::fprintf(stderr, "pscc: unknown option '%s'\n", A.c_str());
      return false;
    } else {
      O.Input = A;
    }
  }
  return !O.Input.empty();
}

std::string loadInput(const std::string &Input, std::string &Name) {
  if (const Workload *W = findWorkload(Input)) {
    Name = W->Name;
    return W->Source;
  }
  std::ifstream In(Input);
  if (!In) {
    std::fprintf(stderr, "pscc: cannot open '%s'\n", Input.c_str());
    return "";
  }
  Name = Input;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O)) {
    std::fprintf(
        stderr,
        "usage: pscc [--emit-ir] [--emit-pdg] [--emit-pspdg] [--summary]\n"
        "            [--fingerprint] [--plans[=abs]] [--options[=abs]]\n"
        "            [--critical-path] [--run] [--run-parallel[=abs]]\n"
        "            [--threads=N] [--without=feat,...]\n"
        "            <file.psc | BT|CG|EP|FT|IS|LU|MG|SP>\n");
    return 2;
  }

  std::string Name;
  std::string Source = loadInput(O.Input, Name);
  if (Source.empty())
    return 1;

  CompileResult R = compileSource(Source, Name);
  if (!R.ok()) {
    for (const std::string &D : R.Diagnostics)
      std::fprintf(stderr, "%s: %s\n", Name.c_str(), D.c_str());
    return 1;
  }
  Module &M = *R.M;

  if (O.EmitIR)
    std::printf("%s", M.str().c_str());

  // Per-function graph dumps.
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    if (!O.EmitPDG && !O.EmitPSPDG && !O.Summary && !O.Fingerprint)
      break;
    FunctionAnalysis FA(*F);
    DependenceInfo DI(FA);
    if (O.EmitPDG) {
      PDG G(FA, DI);
      std::printf("// PDG of @%s\n%s", F->getName().c_str(),
                  G.toDot().c_str());
    }
    if (O.EmitPSPDG || O.Summary || O.Fingerprint) {
      auto G = buildPSPDG(FA, DI, O.Features);
      if (O.Summary)
        std::printf("@%s: %s\n", F->getName().c_str(), G->summary().c_str());
      if (O.Fingerprint)
        std::printf("@%s: fingerprint %016llx\n", F->getName().c_str(),
                    (unsigned long long)fingerprintHash(*G));
      if (O.EmitPSPDG)
        std::printf("// PS-PDG of @%s\n%s", F->getName().c_str(),
                    G->toDot().c_str());
    }
  }

  if (O.Plans) {
    for (const auto &F : M.functions()) {
      if (F->isDeclaration())
        continue;
      FunctionAnalysis FA(*F);
      if (FA.loopInfo().loops().empty())
        continue;
      DependenceInfo DI(FA);
      std::unique_ptr<PSPDG> G;
      if (O.Abs == AbstractionKind::PSPDG)
        G = buildPSPDG(FA, DI, O.Features);
      if (O.Abs == AbstractionKind::OpenMP) {
        std::printf("(OpenMP has no compiler plan view; see --options)\n");
        break;
      }
      AbstractionView V(O.Abs, FA, DI, G.get());
      for (const Loop *L : FA.loopInfo().loops()) {
        LoopPlanView PV = V.viewFor(*L);
        LoopSCCDAG DAG(PV);
        std::printf("@%s %-16s depth=%u SCCs=%u seq=%u %s%s\n",
                    F->getName().c_str(),
                    F->getBlock(L->getHeader())->getName().c_str(),
                    L->getDepth(), DAG.numSCCs(), DAG.numSequentialSCCs(),
                    DAG.allParallel() && PV.TripCountable ? "DOALL" : "-",
                    PV.NumOrderlessConflicts ? " (lock)" : "");
      }
    }
  }

  if (O.CountOptions) {
    OptionCount C = enumerateOptions(M, O.Abs, {}, nullptr, O.Features);
    std::printf("%s options: %llu over %u loops (%u DOALL)\n",
                abstractionName(O.Abs), (unsigned long long)C.Total,
                C.LoopsConsidered, C.DOALLLoops);
  }

  if (O.CriticalPath) {
    CriticalPathReport C = evaluateCriticalPaths(M);
    std::printf("sequential=%llu OpenMP=%.0f PDG=%.0f J&K=%.0f PS-PDG=%.0f\n",
                (unsigned long long)C.TotalDynamicInstructions, C.OpenMP,
                C.PDG, C.JK, C.PSPDG);
  }

  if (O.Run) {
    Interpreter I(M);
    RunResult Run = I.run();
    for (const std::string &Line : Run.Output)
      std::printf("%s\n", Line.c_str());
    if (!Run.Completed)
      std::fprintf(stderr, "pscc: instruction budget exhausted\n");
    return static_cast<int>(Run.ExitValue);
  }

  if (O.RunParallel) {
    using Clock = std::chrono::steady_clock;
    auto Ms = [](Clock::time_point A, Clock::time_point B) {
      return std::chrono::duration<double, std::milli>(B - A).count();
    };

    Interpreter Seq(M);
    Clock::time_point T0 = Clock::now();
    RunResult SeqR = Seq.run();
    Clock::time_point T1 = Clock::now();

    RuntimePlan Plan = buildRuntimePlan(M, O.RunAbs, O.Threads, O.Features);
    ParallelRuntime RT(M, Plan);
    Clock::time_point T2 = Clock::now();
    ParallelRunResult Par = RT.run();
    Clock::time_point T3 = Clock::now();

    for (const std::string &Line : Par.R.Output)
      std::printf("%s\n", Line.c_str());

    std::fprintf(stderr, "== %s plan on %u threads ==\n",
                 abstractionName(O.RunAbs), O.Threads);
    for (const LoopExecStat &L : Par.Loops) {
      std::fprintf(stderr, "  @%s %-14s depth=%u %-10s invocations=%llu "
                           "iterations=%llu%s%s\n",
                   L.F->getName().c_str(),
                   L.F->getBlock(L.Header)->getName().c_str(), L.Depth,
                   scheduleKindName(L.Kind),
                   (unsigned long long)L.Invocations,
                   (unsigned long long)L.Iterations,
                   L.Kind == ScheduleKind::Sequential ? "  // " : "",
                   L.Kind == ScheduleKind::Sequential ? L.Reason.c_str()
                                                      : "");
    }
    double SeqMs = Ms(T0, T1), ParMs = Ms(T2, T3);
    std::fprintf(stderr,
                 "sequential %.2f ms, parallel %.2f ms, speedup %.2fx\n",
                 SeqMs, ParMs, ParMs > 0 ? SeqMs / ParMs : 0.0);

    if (!Par.Error.empty()) {
      std::fprintf(stderr, "pscc: parallel run failed: %s\n",
                   Par.Error.c_str());
      return 1;
    }
    if (!Par.R.Completed)
      std::fprintf(stderr, "pscc: instruction budget exhausted\n");
    if (Par.R.Output != SeqR.Output || Par.R.ExitValue != SeqR.ExitValue) {
      std::fprintf(stderr,
                   "pscc: PARALLEL OUTPUT DIVERGES FROM SEQUENTIAL RUN\n");
      return 1;
    }
    std::fprintf(stderr, "output matches the sequential run\n");
    return static_cast<int>(Par.R.ExitValue);
  }
  return 0;
}
