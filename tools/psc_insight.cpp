//===- psc_insight.cpp - offline trace analytics ------------------*- C++ -*-===//
///
/// \file
/// `psc-insight` ingests the Chrome-trace files this repo's recorder
/// writes (`pscc --trace-out=FILE`, `pscd --trace-dir=DIR` session
/// files) and prints, per trace: the stage wall-clock breakdown, a
/// worker-utilization timeline, the critical path through the span
/// graph, per-loop gate-wait / token-wait / chunk-imbalance
/// attribution, speculation efficiency (misspec rate, rollback cost in
/// lost instructions, burned plans), and L1/L2/L3 cache traffic.
///
///   psc_insight [--json] TRACE.json...
///   psc_insight [--json] --trace-dir=DIR
///
///   --trace-dir=DIR   analyze every DIR/session-*.json (a pscd trace
///                     directory), in session order
///   --json            machine output:
///                     {"tool":"psc-insight","version":1,"sessions":[...]}
///
/// Malformed or truncated traces are rejected with a diagnostic and a
/// nonzero exit — never a partial report.
///
//===----------------------------------------------------------------------===//

#include "obs/Insight.h"

#include <algorithm>
#include <cstdio>
#include <dirent.h>
#include <string>
#include <vector>

using namespace psc::obs;

namespace {

int usage() {
  std::fprintf(stderr, "usage: psc_insight [--json] TRACE.json...\n"
                       "       psc_insight [--json] --trace-dir=DIR\n");
  return 2;
}

/// DIR/session-*.json, sorted by name (session ids are zero-padded by
/// the writer's sequence counter ordering either way for small counts).
bool listSessionTraces(const std::string &Dir, std::vector<std::string> &Out,
                       std::string &Err) {
  DIR *D = opendir(Dir.c_str());
  if (!D) {
    Err = "cannot open trace directory '" + Dir + "'";
    return false;
  }
  while (dirent *E = readdir(D)) {
    std::string Name = E->d_name;
    if (Name.rfind("session-", 0) == 0 && Name.size() > 5 &&
        Name.compare(Name.size() - 5, 5, ".json") == 0)
      Out.push_back(Dir + "/" + Name);
  }
  closedir(D);
  std::sort(Out.begin(), Out.end());
  return true;
}

} // namespace

int main(int argc, char **argv) {
  bool Json = false;
  std::string TraceDir;
  std::vector<std::string> Files;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--json")
      Json = true;
    else if (A.rfind("--trace-dir=", 0) == 0)
      TraceDir = A.substr(12);
    else if (A.rfind("--", 0) == 0)
      return usage();
    else
      Files.push_back(A);
  }
  if (!TraceDir.empty()) {
    std::string Err;
    if (!listSessionTraces(TraceDir, Files, Err)) {
      std::fprintf(stderr, "psc_insight: %s\n", Err.c_str());
      return 1;
    }
    if (Files.empty()) {
      std::fprintf(stderr, "psc_insight: no session-*.json traces in %s\n",
                   TraceDir.c_str());
      return 1;
    }
  }
  if (Files.empty())
    return usage();

  std::vector<InsightReport> Reports;
  for (const std::string &Path : Files) {
    InsightTrace T;
    std::string Err;
    if (!parseTraceFile(Path, T, Err)) {
      std::fprintf(stderr, "psc_insight: %s\n", Err.c_str());
      return 1;
    }
    Reports.push_back(analyzeTrace(T, Path));
  }

  if (Json) {
    std::string Out = renderInsightJson(Reports);
    std::fwrite(Out.data(), 1, Out.size(), stdout);
    return 0;
  }
  for (size_t I = 0; I < Reports.size(); ++I) {
    if (I)
      std::printf("\n");
    std::string Out = renderInsightReport(Reports[I]);
    std::fwrite(Out.data(), 1, Out.size(), stdout);
  }
  return 0;
}
