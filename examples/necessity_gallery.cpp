//===- necessity_gallery.cpp - Paper Fig. 11 gallery ---------------*- C++ -*-===//
///
/// \file
/// Walks the five §4 necessity pairs: for each PS-PDG feature it shows the
/// fast/slow program pair, their PS-PDG fingerprint hashes with the full
/// abstraction (different), and with the feature removed (identical) —
/// demonstrating that every extension is necessary.
///
//===----------------------------------------------------------------------===//

#include "analysis/DependenceAnalysis.h"
#include "frontend/Frontend.h"
#include "pspdg/Fingerprint.h"
#include "pspdg/PSPDGBuilder.h"
#include "workloads/NecessityPairs.h"

#include <cstdio>

using namespace psc;

static uint64_t hashOf(const std::string &Source, const FeatureSet &F) {
  auto M = compileOrDie(Source, "pair");
  FunctionAnalysis FA(*M->getFunction("main"));
  DepOracleStack Stack(FA);
  auto G = buildPSPDG(FA, Stack, F);
  return fingerprintHash(*G);
}

int main(int argc, char **argv) {
  bool ShowSource = argc > 1 && std::string(argv[1]) == "-v";

  std::printf("=== The necessity of each PS-PDG extension (paper §4) ===\n");
  std::printf("Two semantically different programs per feature; 'same'\n"
              "means the ablated abstraction cannot tell them apart.\n\n");

  for (const NecessityPair &P : necessityPairs()) {
    std::printf("--- Fig. 11-%s ---\n", P.Name.c_str());
    if (ShowSource) {
      std::printf("fast:\n%s\nslow:\n%s\n", P.Fast.c_str(), P.Slow.c_str());
    }
    uint64_t FullFast = hashOf(P.Fast, FeatureSet::full());
    uint64_t FullSlow = hashOf(P.Slow, FeatureSet::full());
    uint64_t AblFast = hashOf(P.Fast, P.Ablated);
    uint64_t AblSlow = hashOf(P.Slow, P.Ablated);

    std::printf("  full PS-PDG : fast=%016llx slow=%016llx -> %s\n",
                (unsigned long long)FullFast, (unsigned long long)FullSlow,
                FullFast != FullSlow ? "DISTINCT" : "same (unexpected!)");
    std::printf("  without %-28s: fast=%016llx slow=%016llx -> %s\n",
                P.Feature.c_str(), (unsigned long long)AblFast,
                (unsigned long long)AblSlow,
                AblFast == AblSlow ? "same (information lost)"
                                   : "distinct (unexpected!)");
    std::printf("\n");
  }
  std::printf("(re-run with -v to print the program pairs)\n");
  return 0;
}
