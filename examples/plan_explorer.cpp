//===- plan_explorer.cpp - Interactive plan-space explorer ---------*- C++ -*-===//
///
/// \file
/// CLI over the benchmark suite: for a chosen kernel and abstraction, list
/// every loop with its SCC decomposition, DOALL verdict, option count
/// (Fig. 13 metric) and runtime coverage. Run without arguments for usage.
///
///   plan_explorer <BT|CG|EP|FT|IS|LU|MG|SP> [openmp|pdg|jk|pspdg]
///
//===----------------------------------------------------------------------===//

#include "emulator/Coverage.h"
#include "frontend/Frontend.h"
#include "parallel/PlanEnumerator.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstring>

using namespace psc;

static AbstractionKind parseKind(const char *S) {
  if (!strcmp(S, "openmp"))
    return AbstractionKind::OpenMP;
  if (!strcmp(S, "pdg"))
    return AbstractionKind::PDG;
  if (!strcmp(S, "jk"))
    return AbstractionKind::JK;
  return AbstractionKind::PSPDG;
}

int main(int argc, char **argv) {
  if (argc < 2) {
    std::printf("usage: plan_explorer <benchmark> [abstraction]\n\n");
    std::printf("benchmarks:\n");
    for (const Workload &W : nasWorkloads())
      std::printf("  %-4s %s\n", W.Name.c_str(), W.Description.c_str());
    std::printf("abstractions: openmp pdg jk pspdg (default: pspdg)\n");
    return 0;
  }

  const Workload *W = findWorkload(argv[1]);
  if (!W) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", argv[1]);
    return 1;
  }
  AbstractionKind Kind = argc >= 3 ? parseKind(argv[2])
                                   : AbstractionKind::PSPDG;

  auto M = compileOrDie(W->Source, W->Name);

  // Profile coverage.
  ModuleAnalyses MA(*M);
  CoverageProfiler Cov(MA);
  Interpreter I(*M);
  I.addObserver(&Cov);
  RunResult Run = I.run();
  CoverageMap Coverage = Cov.coverage();

  std::printf("=== %s under %s ===\n", W->Name.c_str(),
              abstractionName(Kind));
  std::printf("%s\n", W->Description.c_str());
  std::printf("%llu dynamic instructions; checksum %s\n\n",
              (unsigned long long)Run.InstructionsExecuted,
              Run.Output.empty() ? "?" : Run.Output.back().c_str());

  OptionCount R = enumerateOptions(*M, Kind, {}, &Coverage);
  std::printf("%-10s %-16s %6s %6s %6s %8s %9s\n", "function", "loop",
              "depth", "SCCs", "seq", "DOALL", "options");
  for (const LoopOptions &LO : R.PerLoop) {
    double Frac = 0;
    auto It = Coverage.find({LO.FunctionName, LO.HeaderBlock});
    if (It != Coverage.end())
      Frac = It->second;
    const Function *F = M->getFunction(LO.FunctionName);
    std::printf("%-10s %-16s %6u %6u %6u %8s %9llu   (%.1f%% coverage)\n",
                LO.FunctionName.c_str(),
                F->getBlock(LO.HeaderBlock)->getName().c_str(),
                LO.Depth, LO.NumSCCs, LO.NumSeqSCCs,
                LO.DOALL ? "yes" : "no", (unsigned long long)LO.Options,
                Frac * 100.0);
  }
  std::printf("\ntotal options: %llu across %u hot loops (%u DOALL)\n",
              (unsigned long long)R.Total, R.LoopsConsidered, R.DOALLLoops);
  return 0;
}
