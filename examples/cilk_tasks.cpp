//===- cilk_tasks.cpp - Appendix A: Cilk tasks in the PS-PDG -------*- C++ -*-===//
///
/// \file
/// Demonstrates the paper's Appendix A: Cilk's execution model (spawn /
/// sync / hyperobjects) mapped onto the PS-PDG. A spawn-per-iteration loop
/// (the cilk_for idiom) with a hyperobject accumulator is compiled, its
/// PS-PDG inspected, and the planner verdicts compared with the PDG's.
///
//===----------------------------------------------------------------------===//

#include "emulator/CriticalPath.h"
#include "frontend/Frontend.h"
#include "parallel/AbstractionView.h"
#include "pspdg/PSPDGBuilder.h"

#include <cstdio>

using namespace psc;

int main() {
  const char *Source = R"PSC(
// A Cilk-style program: per-row work is spawned as tasks; the row sums
// accumulate into a hyperobject (reducible views) merged by merge_views.
double grid[1024];
double views[8];
#pragma psc reducible(views : merge_views)

void merge_views(double a[], double b[]) {
  int k;
  for (k = 0; k < 8; k++) { a[k] = a[k] + b[k]; }
}

void row_work(int r) {
  int j;
  double s;
  s = 0.0;
  for (j = 0; j < 32; j++) {
    grid[r * 32 + j] = grid[r * 32 + j] * 0.5 + 1.0;
    s = s + grid[r * 32 + j];
  }
  views[r % 8] = views[r % 8] + s;
}

int main() {
  int r;
  int total;
  for (r = 0; r < 32; r++) {
    spawn row_work(r);
  }
  sync;
  total = views[0] + views[7];
  print(total);
  return 0;
}
)PSC";

  std::printf("=== Cilk tasks in the PS-PDG (paper Appendix A) ===\n\n%s\n",
              Source);

  CompileResult R = compileSource(Source, "cilk");
  if (!R.ok()) {
    for (const std::string &D : R.Diagnostics)
      std::fprintf(stderr, "error: %s\n", D.c_str());
    return 1;
  }

  const Function &F = *R.M->getFunction("main");
  FunctionAnalysis FA(F);
  DepOracleStack Stack(FA);
  auto G = buildPSPDG(FA, Stack);
  std::printf("%s\n", G->summary().c_str());

  unsigned Tasks = 0;
  for (PSNodeId N = 0; N < G->numNodes(); ++N)
    if (G->node(N).Region == PSRegionKind::TaskRegion)
      ++Tasks;
  std::printf("task (spawn) hierarchical nodes: %u\n", Tasks);
  if (const PSVariable *V = G->variableFor(R.M->getGlobal("views")))
    std::printf("hyperobject: '%s' reducible via @%s (%zu defs, %zu uses)\n",
                V->Name.c_str(), V->CustomReducer->getName().c_str(),
                V->DefNodes.size(), V->UseNodes.size());

  AbstractionView PDGView(AbstractionKind::PDG, FA, Stack);
  AbstractionView PSView(AbstractionKind::PSPDG, FA, Stack, G.get());
  const Loop *L = FA.loopInfo().loops()[0];
  LoopSCCDAG PDGDag(PDGView.viewFor(*L));
  LoopPlanView PSPlan = PSView.viewFor(*L);
  LoopSCCDAG PSDag(PSPlan);
  std::printf("\nspawn loop under PDG   : %u/%u sequential SCCs -> %s\n",
              PDGDag.numSequentialSCCs(), PDGDag.numSCCs(),
              PDGDag.allParallel() ? "DOALL" : "not DOALL");
  std::printf("spawn loop under PS-PDG: %u/%u sequential SCCs -> %s\n",
              PSDag.numSequentialSCCs(), PSDag.numSCCs(),
              PSDag.allParallel() && PSPlan.TripCountable ? "DOALL"
                                                          : "not DOALL");

  CriticalPathReport CP = evaluateCriticalPaths(*R.M);
  std::printf("\ncritical paths: sequential=%llu PDG=%.0f PS-PDG=%.0f "
              "(%.1fx better)\n",
              (unsigned long long)CP.TotalDynamicInstructions, CP.PDG,
              CP.PSPDG, CP.PDG / CP.PSPDG);

  std::printf("\nThe spawned strands are opaque calls to the PDG; the\n"
              "PS-PDG's SESE task nodes and the hyperobject's reducible\n"
              "variable recover the concurrency the programmer expressed.\n");
  return 0;
}
