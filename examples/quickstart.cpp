//===- quickstart.cpp - PS-PDG library quickstart ------------------*- C++ -*-===//
///
/// \file
/// End-to-end tour of the public API in ~100 lines:
///   1. compile a PSC program with OpenMP-style pragmas,
///   2. run the dependence analysis,
///   3. build the classic PDG and the PS-PDG,
///   4. compare what each abstraction lets the parallelizer do,
///   5. print the PS-PDG (summary + DOT).
///
//===----------------------------------------------------------------------===//

#include "emulator/Interpreter.h"
#include "frontend/Frontend.h"
#include "parallel/AbstractionView.h"
#include "pdg/PDG.h"
#include "pspdg/PSPDGBuilder.h"

#include <cstdio>

using namespace psc;

int main() {
  // A histogram loop: the indirect subscript defeats static dependence
  // analysis, but the programmer declared the iterations independent and
  // the buffer thread-private.
  const char *Source = R"PSC(
int hist[256];
int keys[4096];
#pragma psc threadprivate(hist)

int main() {
  int i;
  int seed;
  seed = 12345;
  for (i = 0; i < 4096; i++) {
    seed = lcg(seed);
    keys[i] = seed % 256;
  }
  #pragma psc parallel for
  for (i = 0; i < 4096; i++) {
    hist[keys[i]] += 1;
  }
  print(hist[0] + hist[255]);
  return 0;
}
)PSC";

  // 1. Front-end: source -> verified IR with parallel annotations.
  CompileResult R = compileSource(Source, "quickstart");
  if (!R.ok()) {
    for (const std::string &D : R.Diagnostics)
      std::fprintf(stderr, "error: %s\n", D.c_str());
    return 1;
  }
  Module &M = *R.M;
  std::printf("--- IR (%zu directives recorded) ---\n%s\n",
              M.getParallelInfo().directives().size(), M.str().c_str());

  // 2. Analyses: CFG/dominators/loops + dependences.
  const Function &F = *M.getFunction("main");
  FunctionAnalysis FA(F);
  DepOracleStack Stack(FA); // shared by every consumer below
  std::printf("--- analysis: %zu instructions, %zu loops, %zu dependence "
              "edges ---\n",
              FA.instructions().size(), FA.loopInfo().loops().size(),
              buildDepEdges(Stack).size());

  // 3. Abstractions: the classic PDG and the PS-PDG (the second build is
  // served almost entirely by the stack's query cache).
  PDG ClassicPDG(FA, Stack);
  std::unique_ptr<PSPDG> G = buildPSPDG(FA, Stack);
  std::printf("%s\n", G->summary().c_str());
  std::printf("dep-oracle cache: %llu queries, %llu hits\n\n",
              (unsigned long long)Stack.cacheStats().Queries,
              (unsigned long long)Stack.cacheStats().Hits);

  // 4. What can the parallelizer do with each abstraction?
  AbstractionView PDGView(AbstractionKind::PDG, FA, Stack);
  AbstractionView PSView(AbstractionKind::PSPDG, FA, Stack, G.get());
  for (const Loop *L : FA.loopInfo().loops()) {
    const char *Header = F.getBlock(L->getHeader())->getName().c_str();
    for (const AbstractionView *V : {&PDGView, &PSView}) {
      LoopPlanView PV = V->viewFor(*L);
      LoopSCCDAG DAG(PV);
      std::printf("loop %-14s under %-6s: %2u SCCs, %u sequential -> %s\n",
                  Header, abstractionName(V->kind()), DAG.numSCCs(),
                  DAG.numSequentialSCCs(),
                  DAG.allParallel() && PV.TripCountable ? "DOALL"
                                                        : "not DOALL");
    }
  }

  // 5. Execute the program on the emulator.
  Interpreter I(M);
  RunResult Run = I.run();
  std::printf("\nprogram output: %s (%llu dynamic instructions)\n",
              Run.Output.empty() ? "<none>" : Run.Output[0].c_str(),
              (unsigned long long)Run.InstructionsExecuted);

  std::printf("\nThe PDG must assume the histogram loop's iterations "
              "conflict;\nthe PS-PDG knows they do not — that is the "
              "paper's point.\n");
  return 0;
}
