//===- is_replanning.cpp - The paper's Fig. 3 IS walk-through ------*- C++ -*-===//
///
/// \file
/// Reproduces the paper's motivating example (§2, Fig. 3): the hottest
/// kernel of NAS IS, as the programmer parallelized it, and what a
/// PS-PDG-equipped compiler can do instead. For each of the kernel's four
/// loops it shows how every abstraction classifies the loop and the
/// resulting ideal-machine critical paths.
///
//===----------------------------------------------------------------------===//

#include "emulator/CriticalPath.h"
#include "frontend/Frontend.h"
#include "parallel/AbstractionView.h"
#include "pspdg/PSPDGBuilder.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace psc;

int main() {
  const Workload *IS = findWorkload("IS");
  std::printf("=== NAS IS re-planning (paper Fig. 3) ===\n\n");
  std::printf("The kernel (PSC):\n%s\n", IS->Source.c_str());

  auto M = compileOrDie(IS->Source, "IS");
  const Function &F = *M->getFunction("main");
  FunctionAnalysis FA(F);
  DepOracleStack Stack(FA); // one cache across all three views
  auto G = buildPSPDG(FA, Stack);
  std::printf("%s\n\n", G->summary().c_str());

  AbstractionView PDGView(AbstractionKind::PDG, FA, Stack);
  AbstractionView JKView(AbstractionKind::JK, FA, Stack);
  AbstractionView PSView(AbstractionKind::PSPDG, FA, Stack, G.get());

  std::printf("%-16s %-10s | %-12s %-12s %-12s\n", "loop (header)", "depth",
              "PDG", "J&K", "PS-PDG");
  for (const Loop *L : FA.loopInfo().loops()) {
    std::printf("%-16s %-10u |",
                F.getBlock(L->getHeader())->getName().c_str(),
                L->getDepth());
    for (const AbstractionView *V : {&PDGView, &JKView, &PSView}) {
      LoopPlanView PV = V->viewFor(*L);
      LoopSCCDAG DAG(PV);
      char Buf[32];
      if (DAG.allParallel() && PV.TripCountable)
        std::snprintf(Buf, sizeof(Buf), "DOALL%s",
                      PV.NumOrderlessConflicts ? "+lock" : "");
      else
        std::snprintf(Buf, sizeof(Buf), "%useq/%u", DAG.numSequentialSCCs(),
                      DAG.numSCCs());
      std::printf(" %-12s", Buf);
    }
    std::printf("\n");
  }

  std::printf("\nIdeal-machine critical paths (dynamic IR instructions):\n");
  CriticalPathReport R = evaluateCriticalPaths(*M);
  std::printf("  sequential  : %llu\n",
              (unsigned long long)R.TotalDynamicInstructions);
  std::printf("  OpenMP plan : %.0f\n", R.OpenMP);
  std::printf("  PDG plan    : %.0f  (%.2fx of OpenMP)\n", R.PDG,
              R.OpenMP / R.PDG);
  std::printf("  J&K plan    : %.0f  (%.2fx)\n", R.JK, R.OpenMP / R.JK);
  std::printf("  PS-PDG plan : %.0f  (%.2fx)\n", R.PSPDG,
              R.OpenMP / R.PSPDG);

  std::printf(
      "\nWhat happened (paper §2.2): the PS-PDG knows prv_buff1 is\n"
      "thread-private (privatizable), that the critical merge is orderless,\n"
      "and that the worksharing declaration holds in the context of loop 2.\n"
      "It can therefore re-plan all four loops — including the ones the\n"
      "programmer left sequential — while the PDG must keep every\n"
      "conservative dependence, and J&K only refines the annotated loop.\n");
  return 0;
}
