#!/usr/bin/env bash
# Runs the perf-trajectory benchmarks and (re)writes the tracked baseline
# records at the repo root:
#
#   BENCH_runtime.json — per-workload engine throughput (walker vs
#                        bytecode) and parallel plan execution
#   BENCH_micro.json   — component micros (frontend, decoder) + engine
#                        instrs/s per workload
#   BENCH_ablation.json — planner power per removed PS-PDG feature
#                        (Fig. 13 option counts + Fig. 14 critical paths)
#                        plus the speculation-stage ablation (sound /
#                        +spec / +spec+valuespec options & DOALL loops)
#   BENCH_fig13.json   — parallelization options per abstraction
#   BENCH_fig14.json   — ideal-machine critical paths per abstraction
#   BENCH_server.json  — resident-service (pscd) load: cold vs warm
#                        sessions/s per session mode under concurrent
#                        clients, cache hit rates
#
# Usage: scripts/run_benches.sh [--check] [build-dir]
#   --check     the CI perf gates: fail if the bytecode engine is slower
#               than the walker on any workload, or if the parallel run is
#               slower than sequential bytecode beyond the 10% noise margin
#               (the grain pass demotes loops below this machine's grain,
#               so parallel must never lose; see DESIGN.md §11); plus the
#               service gates (warm run sessions/s >= 3x cold with warm
#               module-cache hit rate >= 0.9, warm analyze sessions/s
#               >= 3x cold with warm plan-cache hit rate >= 0.9) and a
#               sanity parse of the written BENCH_server.json, re-checking
#               both warm gates from the committed record
#   build-dir   defaults to ./build (or $BUILD_DIR)
#
# Environment: THREADS (default 8), REPS (default 3).

set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=""
BUILD="${BUILD_DIR:-build}"
for ARG in "$@"; do
  case "$ARG" in
    --check) CHECK="--check-faster --check-parallel" ;;
    *) BUILD="$ARG" ;;
  esac
done

THREADS="${THREADS:-8}"
REPS="${REPS:-3}"

for BIN in bench_runtime bench_micro bench_ablation bench_fig13_options \
           bench_fig14_critical_path bench_server; do
  if [[ ! -x "$BUILD/$BIN" ]]; then
    echo "run_benches: $BUILD/$BIN not built (cmake --build $BUILD --target $BIN)" >&2
    exit 1
  fi
done

"$BUILD/bench_runtime" "$THREADS" pspdg --reps="$REPS" \
    --json=BENCH_runtime.json $CHECK
"$BUILD/bench_micro" --json=BENCH_micro.json --reps="$REPS"
"$BUILD/bench_ablation" --json=BENCH_ablation.json > /dev/null
"$BUILD/bench_fig13_options" --json=BENCH_fig13.json > /dev/null
"$BUILD/bench_fig14_critical_path" --json=BENCH_fig14.json > /dev/null
"$BUILD/bench_server" --reps="$REPS" --json=BENCH_server.json \
    ${CHECK:+--check} > /dev/null 2>&1 || {
  echo "run_benches: bench_server failed its perf gates" >&2
  "$BUILD/bench_server" --reps=1 ${CHECK:+--check} >&2 || true
  exit 1
}

if [[ -n "$CHECK" ]]; then
  # BENCH_server.json must exist and parse: a stable schema with the warm
  # records carrying the cache-hit-rate evidence.
  python3 - <<'EOF'
import json
with open("BENCH_server.json") as f:
    doc = json.load(f)
assert doc["bench"] == "server", doc
records = doc["records"]
assert any(r["engine"] == "warm_run" and "module_cache_hit_rate" in r
           for r in records), records
# The warm-analyze gate, re-checked from the record the run just wrote:
# the L3 plan cache must make warm analyze sessions >= 3x cold with a
# >= 0.9 plan-cache hit rate on the warm window.
warm_analyze = [r for r in records if r["engine"] == "warm_analyze"]
assert warm_analyze, records
r = warm_analyze[0]
assert r["warm_speedup"] >= 3.0, r
assert r["plan_cache_hit_rate"] >= 0.9, r
assert "stage_plan_ms" in r, r
print("run_benches: BENCH_server.json parses (%d records), warm analyze "
      "%.1fx cold, plan hit rate %.2f" %
      (len(records), r["warm_speedup"], r["plan_cache_hit_rate"]))
EOF
  # Trace-off overhead gate (DESIGN.md §13): the probes compiled into the
  # dispatch hot path must model out to <= 2% of the untraced run when
  # tracing is off.
  python3 - <<'EOF'
import json
with open("BENCH_micro.json") as f:
    doc = json.load(f)
recs = [r for r in doc["records"] if r["workload"] == "trace_off_overhead"]
assert recs, "bench_micro must write the trace_off_overhead record"
r = recs[0]
assert "off_ns_per_probe" in r and "probe_fires" in r, r
assert r["overhead_pct"] <= 2.0, r
print("run_benches: trace-off overhead %.4f%% of the dispatch hot loop "
      "(%.3f ns/probe x %d fires)" %
      (r["overhead_pct"], r["off_ns_per_probe"], r["probe_fires"]))
EOF
  # Trace-ON overhead gate (DESIGN.md §14): an armed recorder may slow the
  # measured parallel run by at most 5% — a profiling run must not distort
  # what it profiles.
  python3 - <<'EOF'
import json
with open("BENCH_micro.json") as f:
    doc = json.load(f)
recs = [r for r in doc["records"] if r["workload"] == "trace_on_overhead"]
assert recs, "bench_micro must write the trace_on_overhead record"
r = recs[0]
assert "untraced_ns" in r and "events_per_run" in r, r
assert r["overhead_pct"] <= 5.0, r
print("run_benches: trace-on overhead %.3f%% of the untraced run "
      "(%d events/run)" % (r["overhead_pct"], r["events_per_run"]))
EOF
fi

echo "run_benches: wrote BENCH_{runtime,micro,ablation,fig13,fig14,server}.json"
