#!/usr/bin/env bash
# Docs-consistency gate: every command-line flag pscc parses must be
# documented in the README flag table, and the usage synopses must not
# drift from the parser (spot-checked via the workload list).
#
# The flag inventory is extracted from the string literals in
# tools/pscc.cpp ("--flag" / "--flag="), so adding a flag without
# documenting it fails CI rather than rotting silently.
#
# Usage: scripts/check_docs.sh [pscc-source] [readme]

set -euo pipefail
cd "$(dirname "$0")/.."

PSCC="${1:-tools/pscc.cpp}"
README="${2:-README.md}"

FAIL=0

# Every parsed "--flag" literal must appear in the README as `--flag`.
FLAGS=$(grep -o '"--[a-z][a-z0-9-]*=\?"' "$PSCC" | tr -d '"' | sed 's/=$//' | sort -u)
for FLAG in $FLAGS; do
  if ! grep -q -- "\`$FLAG" "$README"; then
    echo "check_docs: pscc flag $FLAG is not documented in $README" >&2
    FAIL=1
  fi
done

# The README usage line must list the same workloads pscc's usage does
# (catches the next workload addition forgetting the README).
for WL in BT CG EP FT IS LU MG SP UA RX; do
  if ! grep -q "$WL" <(grep -m1 'pscc.*BT|' "$README"); then
    echo "check_docs: workload $WL missing from the README usage line" >&2
    FAIL=1
  fi
done

# bench/README.md documents the tracked BENCH_*.json schemas; the top-level
# README must link it so the schemas stay discoverable.
if ! grep -q 'bench/README.md' "$README"; then
  echo "check_docs: $README does not link bench/README.md" >&2
  FAIL=1
fi

if [[ "$FAIL" -ne 0 ]]; then
  exit 1
fi
echo "check_docs: $(echo "$FLAGS" | wc -l) pscc flags documented; docs consistent"
