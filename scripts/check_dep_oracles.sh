#!/usr/bin/env bash
# Dead-oracle guard for the dependence-oracle stack.
#
# Runs `pscc --dep-stats` over the integration workloads and fails when
#   (a) any registered oracle answered zero queries across all inputs
#       (a "dead" oracle: registered but unreachable), or
#   (b) any single input finishes with a zero cache hit rate (the
#       collaborative cache is not collaborating).
#
# The eight NAS kernels are single-function programs, so nothing in them
# issues an opaque-call query; a ninth synthetic input with a defined
# function call keeps the opaque oracle covered.
set -euo pipefail

PSCC=${1:-./build/pscc}
WORKLOADS=(BT CG EP FT IS LU MG SP)

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
cat > "$tmp/calls.psc" <<'PSC'
int g;
void bump() { g += 1; }
int main() {
  int i;
  for (i = 0; i < 4; i++) { bump(); print(i); }
  return g;
}
PSC

inputs=("${WORKLOADS[@]}" "$tmp/calls.psc")
declare -A answered
for name in ssa control io opaque alias affine; do answered[$name]=0; done
fail=0

for input in "${inputs[@]}"; do
  echo "== pscc --dep-stats $input"
  out=$("$PSCC" --dep-stats "$input")
  echo "$out"
  hits=$(echo "$out" | sed -n 's/^dep-cache .*hits=\([0-9]*\).*/\1/p')
  if [ "${hits:-0}" -eq 0 ]; then
    echo "FAIL: zero cache hits on $input"
    fail=1
  fi
  while read -r name ans; do
    answered[$name]=$(( ${answered[$name]:-0} + ans ))
  done < <(echo "$out" | awk '/^dep-oracle/ { split($3, a, "="); print $2, a[2] }')
done

echo "== aggregate answered queries per oracle"
for name in ssa control io opaque alias affine; do
  echo "  $name: ${answered[$name]:-0}"
  if [ "${answered[$name]:-0}" -eq 0 ]; then
    echo "FAIL: dead oracle '$name' (zero answered queries across inputs)"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "dead-oracle guard FAILED"
  exit 1
fi
echo "dead-oracle guard OK"
