#!/usr/bin/env bash
# Dead-oracle guard for the dependence-oracle stack.
#
# Runs `pscc --dep-stats` over the integration workloads and fails when
#   (a) any registered oracle answered zero queries across all inputs
#       (a "dead" oracle: registered but unreachable), or
#   (b) any single input finishes with a zero cache hit rate (the
#       collaborative cache is not collaborating).
#
# The oracle list is NOT hardcoded: it is recovered from pscc's own
# registry (the "known:" list in the unknown-oracle diagnostic), so an
# oracle that is registered in the binary but never exercised by this
# guard's inputs fails loudly instead of silently rotting.
#
# The eight NAS kernels are single-function programs, so nothing in them
# issues an opaque-call query; a ninth synthetic input with a defined
# function call keeps the opaque oracle covered. The speculative oracles
# ('spec' and 'valuespec') only answer under a training profile, so each
# workload is first profiled (--profile-out) and then re-analyzed with
# --spec-profile (which enables both downgrade stages; CG's strided
# matrix-build cursor keeps 'valuespec' exercised).
set -euo pipefail

PSCC=${1:-./build/pscc}
WORKLOADS=(BT CG EP FT IS LU MG SP)

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
cat > "$tmp/calls.psc" <<'PSC'
int g;
void bump() { g += 1; }
int main() {
  int i;
  for (i = 0; i < 4; i++) { bump(); print(i); }
  return g;
}
PSC

# Recover the registered oracle names from the binary itself.
known=$({ "$PSCC" --dep-oracles=__probe__ "$tmp/calls.psc" 2>&1 || true; } \
          | sed -n "s/.*(known: \(.*\)).*/\1/p" | tr -d ',')
if [ -z "$known" ]; then
  echo "FAIL: could not recover the registered oracle list from $PSCC"
  exit 1
fi
echo "== registered oracles: $known"

declare -A answered
for name in $known; do answered[$name]=0; done
fail=0

run_and_tally() {
  local desc=$1; shift
  echo "== pscc --dep-stats $desc"
  local out
  out=$("$PSCC" --dep-stats "$@")
  echo "$out"
  local hits
  hits=$(echo "$out" | sed -n 's/^dep-cache .*hits=\([0-9]*\).*/\1/p')
  if [ "${hits:-0}" -eq 0 ]; then
    echo "FAIL: zero cache hits on $desc"
    fail=1
  fi
  while read -r name ans; do
    answered[$name]=$(( ${answered[$name]:-0} + ans ))
  done < <(echo "$out" | awk '/^dep-oracle/ { split($3, a, "="); print $2, a[2] }')
}

for w in "${WORKLOADS[@]}"; do
  "$PSCC" --profile-out="$tmp/$w.profile.json" "$w" > /dev/null
  run_and_tally "$w (spec-profile trained on $w)" \
    --spec-profile="$tmp/$w.profile.json" "$w"
done
run_and_tally "calls.psc" "$tmp/calls.psc"

echo "== aggregate answered queries per oracle"
for name in $known; do
  echo "  $name: ${answered[$name]:-0}"
  if [ "${answered[$name]:-0}" -eq 0 ]; then
    echo "FAIL: dead oracle '$name' (zero answered queries across inputs)"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "dead-oracle guard FAILED"
  exit 1
fi
echo "dead-oracle guard OK"
