# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/psc_analysis_tests[1]_include.cmake")
include("/root/repo/build/psc_emulator_tests[1]_include.cmake")
include("/root/repo/build/psc_frontend_tests[1]_include.cmake")
include("/root/repo/build/psc_integration_tests[1]_include.cmake")
include("/root/repo/build/psc_ir_tests[1]_include.cmake")
include("/root/repo/build/psc_parallel_tests[1]_include.cmake")
include("/root/repo/build/psc_pdg_tests[1]_include.cmake")
include("/root/repo/build/psc_pspdg_tests[1]_include.cmake")
include("/root/repo/build/psc_runtime_tests[1]_include.cmake")
include("/root/repo/build/psc_support_tests[1]_include.cmake")
subdirs("googletest")
