# Empty dependencies file for pscc.
# This may be replaced when dependencies are built.
