file(REMOVE_RECURSE
  "CMakeFiles/pscc.dir/tools/pscc.cpp.o"
  "CMakeFiles/pscc.dir/tools/pscc.cpp.o.d"
  "pscc"
  "pscc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pscc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
