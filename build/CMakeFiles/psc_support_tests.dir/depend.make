# Empty dependencies file for psc_support_tests.
# This may be replaced when dependencies are built.
