file(REMOVE_RECURSE
  "CMakeFiles/psc_support_tests.dir/tests/support/CastingTest.cpp.o"
  "CMakeFiles/psc_support_tests.dir/tests/support/CastingTest.cpp.o.d"
  "CMakeFiles/psc_support_tests.dir/tests/support/SCCIteratorTest.cpp.o"
  "CMakeFiles/psc_support_tests.dir/tests/support/SCCIteratorTest.cpp.o.d"
  "psc_support_tests"
  "psc_support_tests.pdb"
  "psc_support_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
