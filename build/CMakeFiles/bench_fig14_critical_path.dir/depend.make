# Empty dependencies file for bench_fig14_critical_path.
# This may be replaced when dependencies are built.
