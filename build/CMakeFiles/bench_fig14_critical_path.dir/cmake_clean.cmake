file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_critical_path.dir/bench/bench_fig14_critical_path.cpp.o"
  "CMakeFiles/bench_fig14_critical_path.dir/bench/bench_fig14_critical_path.cpp.o.d"
  "bench_fig14_critical_path"
  "bench_fig14_critical_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_critical_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
