
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/ParallelRuntimeTest.cpp" "CMakeFiles/psc_runtime_tests.dir/tests/runtime/ParallelRuntimeTest.cpp.o" "gcc" "CMakeFiles/psc_runtime_tests.dir/tests/runtime/ParallelRuntimeTest.cpp.o.d"
  "/root/repo/tests/runtime/ScheduleTest.cpp" "CMakeFiles/psc_runtime_tests.dir/tests/runtime/ScheduleTest.cpp.o" "gcc" "CMakeFiles/psc_runtime_tests.dir/tests/runtime/ScheduleTest.cpp.o.d"
  "/root/repo/tests/runtime/ThreadingPrimitivesTest.cpp" "CMakeFiles/psc_runtime_tests.dir/tests/runtime/ThreadingPrimitivesTest.cpp.o" "gcc" "CMakeFiles/psc_runtime_tests.dir/tests/runtime/ThreadingPrimitivesTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/psc_core.dir/DependInfo.cmake"
  "/root/repo/build/googletest/googletest/CMakeFiles/gtest.dir/DependInfo.cmake"
  "/root/repo/build/googletest/googletest/CMakeFiles/gtest_main.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
