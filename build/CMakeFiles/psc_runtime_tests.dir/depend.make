# Empty dependencies file for psc_runtime_tests.
# This may be replaced when dependencies are built.
