file(REMOVE_RECURSE
  "CMakeFiles/psc_runtime_tests.dir/tests/runtime/ParallelRuntimeTest.cpp.o"
  "CMakeFiles/psc_runtime_tests.dir/tests/runtime/ParallelRuntimeTest.cpp.o.d"
  "CMakeFiles/psc_runtime_tests.dir/tests/runtime/ScheduleTest.cpp.o"
  "CMakeFiles/psc_runtime_tests.dir/tests/runtime/ScheduleTest.cpp.o.d"
  "CMakeFiles/psc_runtime_tests.dir/tests/runtime/ThreadingPrimitivesTest.cpp.o"
  "CMakeFiles/psc_runtime_tests.dir/tests/runtime/ThreadingPrimitivesTest.cpp.o.d"
  "psc_runtime_tests"
  "psc_runtime_tests.pdb"
  "psc_runtime_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_runtime_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
