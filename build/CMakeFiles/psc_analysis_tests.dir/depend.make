# Empty dependencies file for psc_analysis_tests.
# This may be replaced when dependencies are built.
