file(REMOVE_RECURSE
  "CMakeFiles/psc_analysis_tests.dir/tests/analysis/AffineExprTest.cpp.o"
  "CMakeFiles/psc_analysis_tests.dir/tests/analysis/AffineExprTest.cpp.o.d"
  "CMakeFiles/psc_analysis_tests.dir/tests/analysis/DependenceTest.cpp.o"
  "CMakeFiles/psc_analysis_tests.dir/tests/analysis/DependenceTest.cpp.o.d"
  "CMakeFiles/psc_analysis_tests.dir/tests/analysis/MemoryModelTest.cpp.o"
  "CMakeFiles/psc_analysis_tests.dir/tests/analysis/MemoryModelTest.cpp.o.d"
  "CMakeFiles/psc_analysis_tests.dir/tests/analysis/PrivatizationTest.cpp.o"
  "CMakeFiles/psc_analysis_tests.dir/tests/analysis/PrivatizationTest.cpp.o.d"
  "psc_analysis_tests"
  "psc_analysis_tests.pdb"
  "psc_analysis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
