
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/AffineExprTest.cpp" "CMakeFiles/psc_analysis_tests.dir/tests/analysis/AffineExprTest.cpp.o" "gcc" "CMakeFiles/psc_analysis_tests.dir/tests/analysis/AffineExprTest.cpp.o.d"
  "/root/repo/tests/analysis/DependenceTest.cpp" "CMakeFiles/psc_analysis_tests.dir/tests/analysis/DependenceTest.cpp.o" "gcc" "CMakeFiles/psc_analysis_tests.dir/tests/analysis/DependenceTest.cpp.o.d"
  "/root/repo/tests/analysis/MemoryModelTest.cpp" "CMakeFiles/psc_analysis_tests.dir/tests/analysis/MemoryModelTest.cpp.o" "gcc" "CMakeFiles/psc_analysis_tests.dir/tests/analysis/MemoryModelTest.cpp.o.d"
  "/root/repo/tests/analysis/PrivatizationTest.cpp" "CMakeFiles/psc_analysis_tests.dir/tests/analysis/PrivatizationTest.cpp.o" "gcc" "CMakeFiles/psc_analysis_tests.dir/tests/analysis/PrivatizationTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/psc_core.dir/DependInfo.cmake"
  "/root/repo/build/googletest/googletest/CMakeFiles/gtest.dir/DependInfo.cmake"
  "/root/repo/build/googletest/googletest/CMakeFiles/gtest_main.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
