# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for psc_analysis_tests.
