# Empty dependencies file for psc_frontend_tests.
# This may be replaced when dependencies are built.
