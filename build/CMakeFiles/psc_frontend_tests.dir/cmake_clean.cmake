file(REMOVE_RECURSE
  "CMakeFiles/psc_frontend_tests.dir/tests/frontend/CodeGenTest.cpp.o"
  "CMakeFiles/psc_frontend_tests.dir/tests/frontend/CodeGenTest.cpp.o.d"
  "CMakeFiles/psc_frontend_tests.dir/tests/frontend/LexerTest.cpp.o"
  "CMakeFiles/psc_frontend_tests.dir/tests/frontend/LexerTest.cpp.o.d"
  "CMakeFiles/psc_frontend_tests.dir/tests/frontend/ParserTest.cpp.o"
  "CMakeFiles/psc_frontend_tests.dir/tests/frontend/ParserTest.cpp.o.d"
  "CMakeFiles/psc_frontend_tests.dir/tests/frontend/SemaTest.cpp.o"
  "CMakeFiles/psc_frontend_tests.dir/tests/frontend/SemaTest.cpp.o.d"
  "psc_frontend_tests"
  "psc_frontend_tests.pdb"
  "psc_frontend_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_frontend_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
