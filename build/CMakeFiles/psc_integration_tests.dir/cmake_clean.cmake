file(REMOVE_RECURSE
  "CMakeFiles/psc_integration_tests.dir/tests/integration/PropertyTest.cpp.o"
  "CMakeFiles/psc_integration_tests.dir/tests/integration/PropertyTest.cpp.o.d"
  "CMakeFiles/psc_integration_tests.dir/tests/integration/WorkloadsTest.cpp.o"
  "CMakeFiles/psc_integration_tests.dir/tests/integration/WorkloadsTest.cpp.o.d"
  "psc_integration_tests"
  "psc_integration_tests.pdb"
  "psc_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
