# Empty dependencies file for psc_integration_tests.
# This may be replaced when dependencies are built.
