file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_options.dir/bench/bench_fig13_options.cpp.o"
  "CMakeFiles/bench_fig13_options.dir/bench/bench_fig13_options.cpp.o.d"
  "bench_fig13_options"
  "bench_fig13_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
