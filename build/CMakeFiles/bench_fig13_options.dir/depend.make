# Empty dependencies file for bench_fig13_options.
# This may be replaced when dependencies are built.
