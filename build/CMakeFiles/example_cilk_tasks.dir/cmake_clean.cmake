file(REMOVE_RECURSE
  "CMakeFiles/example_cilk_tasks.dir/examples/cilk_tasks.cpp.o"
  "CMakeFiles/example_cilk_tasks.dir/examples/cilk_tasks.cpp.o.d"
  "example_cilk_tasks"
  "example_cilk_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cilk_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
