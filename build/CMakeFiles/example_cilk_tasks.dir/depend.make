# Empty dependencies file for example_cilk_tasks.
# This may be replaced when dependencies are built.
