# Empty dependencies file for psc_pdg_tests.
# This may be replaced when dependencies are built.
