file(REMOVE_RECURSE
  "CMakeFiles/psc_pdg_tests.dir/tests/pdg/PDGTest.cpp.o"
  "CMakeFiles/psc_pdg_tests.dir/tests/pdg/PDGTest.cpp.o.d"
  "psc_pdg_tests"
  "psc_pdg_tests.pdb"
  "psc_pdg_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_pdg_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
