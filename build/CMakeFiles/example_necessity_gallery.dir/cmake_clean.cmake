file(REMOVE_RECURSE
  "CMakeFiles/example_necessity_gallery.dir/examples/necessity_gallery.cpp.o"
  "CMakeFiles/example_necessity_gallery.dir/examples/necessity_gallery.cpp.o.d"
  "example_necessity_gallery"
  "example_necessity_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_necessity_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
