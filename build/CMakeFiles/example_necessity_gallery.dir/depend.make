# Empty dependencies file for example_necessity_gallery.
# This may be replaced when dependencies are built.
