# Empty dependencies file for example_is_replanning.
# This may be replaced when dependencies are built.
