file(REMOVE_RECURSE
  "CMakeFiles/example_is_replanning.dir/examples/is_replanning.cpp.o"
  "CMakeFiles/example_is_replanning.dir/examples/is_replanning.cpp.o.d"
  "example_is_replanning"
  "example_is_replanning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_is_replanning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
