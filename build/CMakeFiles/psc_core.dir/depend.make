# Empty dependencies file for psc_core.
# This may be replaced when dependencies are built.
