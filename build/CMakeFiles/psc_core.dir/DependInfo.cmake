
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/AffineExpr.cpp" "CMakeFiles/psc_core.dir/src/analysis/AffineExpr.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/analysis/AffineExpr.cpp.o.d"
  "/root/repo/src/analysis/DependenceAnalysis.cpp" "CMakeFiles/psc_core.dir/src/analysis/DependenceAnalysis.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/analysis/DependenceAnalysis.cpp.o.d"
  "/root/repo/src/analysis/MemoryModel.cpp" "CMakeFiles/psc_core.dir/src/analysis/MemoryModel.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/analysis/MemoryModel.cpp.o.d"
  "/root/repo/src/analysis/Privatization.cpp" "CMakeFiles/psc_core.dir/src/analysis/Privatization.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/analysis/Privatization.cpp.o.d"
  "/root/repo/src/emulator/Coverage.cpp" "CMakeFiles/psc_core.dir/src/emulator/Coverage.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/emulator/Coverage.cpp.o.d"
  "/root/repo/src/emulator/CriticalPath.cpp" "CMakeFiles/psc_core.dir/src/emulator/CriticalPath.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/emulator/CriticalPath.cpp.o.d"
  "/root/repo/src/emulator/ExecCore.cpp" "CMakeFiles/psc_core.dir/src/emulator/ExecCore.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/emulator/ExecCore.cpp.o.d"
  "/root/repo/src/emulator/Interpreter.cpp" "CMakeFiles/psc_core.dir/src/emulator/Interpreter.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/emulator/Interpreter.cpp.o.d"
  "/root/repo/src/frontend/CodeGen.cpp" "CMakeFiles/psc_core.dir/src/frontend/CodeGen.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/frontend/CodeGen.cpp.o.d"
  "/root/repo/src/frontend/Frontend.cpp" "CMakeFiles/psc_core.dir/src/frontend/Frontend.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/frontend/Frontend.cpp.o.d"
  "/root/repo/src/frontend/Lexer.cpp" "CMakeFiles/psc_core.dir/src/frontend/Lexer.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/frontend/Lexer.cpp.o.d"
  "/root/repo/src/frontend/Parser.cpp" "CMakeFiles/psc_core.dir/src/frontend/Parser.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/frontend/Parser.cpp.o.d"
  "/root/repo/src/frontend/Sema.cpp" "CMakeFiles/psc_core.dir/src/frontend/Sema.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/frontend/Sema.cpp.o.d"
  "/root/repo/src/ir/BasicBlock.cpp" "CMakeFiles/psc_core.dir/src/ir/BasicBlock.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/ir/BasicBlock.cpp.o.d"
  "/root/repo/src/ir/CFG.cpp" "CMakeFiles/psc_core.dir/src/ir/CFG.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/ir/CFG.cpp.o.d"
  "/root/repo/src/ir/Dominators.cpp" "CMakeFiles/psc_core.dir/src/ir/Dominators.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/ir/Dominators.cpp.o.d"
  "/root/repo/src/ir/Instructions.cpp" "CMakeFiles/psc_core.dir/src/ir/Instructions.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/ir/Instructions.cpp.o.d"
  "/root/repo/src/ir/LoopInfo.cpp" "CMakeFiles/psc_core.dir/src/ir/LoopInfo.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/ir/LoopInfo.cpp.o.d"
  "/root/repo/src/ir/Module.cpp" "CMakeFiles/psc_core.dir/src/ir/Module.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/ir/Module.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "CMakeFiles/psc_core.dir/src/ir/Printer.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/ir/Printer.cpp.o.d"
  "/root/repo/src/ir/Type.cpp" "CMakeFiles/psc_core.dir/src/ir/Type.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/ir/Type.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "CMakeFiles/psc_core.dir/src/ir/Verifier.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/ir/Verifier.cpp.o.d"
  "/root/repo/src/parallel/AbstractionView.cpp" "CMakeFiles/psc_core.dir/src/parallel/AbstractionView.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/parallel/AbstractionView.cpp.o.d"
  "/root/repo/src/parallel/LoopSCCDAG.cpp" "CMakeFiles/psc_core.dir/src/parallel/LoopSCCDAG.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/parallel/LoopSCCDAG.cpp.o.d"
  "/root/repo/src/parallel/PlanEnumerator.cpp" "CMakeFiles/psc_core.dir/src/parallel/PlanEnumerator.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/parallel/PlanEnumerator.cpp.o.d"
  "/root/repo/src/parallel/RegionMap.cpp" "CMakeFiles/psc_core.dir/src/parallel/RegionMap.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/parallel/RegionMap.cpp.o.d"
  "/root/repo/src/pdg/PDG.cpp" "CMakeFiles/psc_core.dir/src/pdg/PDG.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/pdg/PDG.cpp.o.d"
  "/root/repo/src/pspdg/Fingerprint.cpp" "CMakeFiles/psc_core.dir/src/pspdg/Fingerprint.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/pspdg/Fingerprint.cpp.o.d"
  "/root/repo/src/pspdg/PSPDG.cpp" "CMakeFiles/psc_core.dir/src/pspdg/PSPDG.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/pspdg/PSPDG.cpp.o.d"
  "/root/repo/src/pspdg/PSPDGBuilder.cpp" "CMakeFiles/psc_core.dir/src/pspdg/PSPDGBuilder.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/pspdg/PSPDGBuilder.cpp.o.d"
  "/root/repo/src/runtime/ParallelRuntime.cpp" "CMakeFiles/psc_core.dir/src/runtime/ParallelRuntime.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/runtime/ParallelRuntime.cpp.o.d"
  "/root/repo/src/runtime/PlanCompiler.cpp" "CMakeFiles/psc_core.dir/src/runtime/PlanCompiler.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/runtime/PlanCompiler.cpp.o.d"
  "/root/repo/src/runtime/ThreadPool.cpp" "CMakeFiles/psc_core.dir/src/runtime/ThreadPool.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/runtime/ThreadPool.cpp.o.d"
  "/root/repo/src/support/ErrorHandling.cpp" "CMakeFiles/psc_core.dir/src/support/ErrorHandling.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/support/ErrorHandling.cpp.o.d"
  "/root/repo/src/workloads/NecessityPairs.cpp" "CMakeFiles/psc_core.dir/src/workloads/NecessityPairs.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/workloads/NecessityPairs.cpp.o.d"
  "/root/repo/src/workloads/Workloads.cpp" "CMakeFiles/psc_core.dir/src/workloads/Workloads.cpp.o" "gcc" "CMakeFiles/psc_core.dir/src/workloads/Workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
