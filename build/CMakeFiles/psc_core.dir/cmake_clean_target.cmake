file(REMOVE_RECURSE
  "libpsc_core.a"
)
