
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ir/DominatorsTest.cpp" "CMakeFiles/psc_ir_tests.dir/tests/ir/DominatorsTest.cpp.o" "gcc" "CMakeFiles/psc_ir_tests.dir/tests/ir/DominatorsTest.cpp.o.d"
  "/root/repo/tests/ir/IRBuilderTest.cpp" "CMakeFiles/psc_ir_tests.dir/tests/ir/IRBuilderTest.cpp.o" "gcc" "CMakeFiles/psc_ir_tests.dir/tests/ir/IRBuilderTest.cpp.o.d"
  "/root/repo/tests/ir/LoopInfoTest.cpp" "CMakeFiles/psc_ir_tests.dir/tests/ir/LoopInfoTest.cpp.o" "gcc" "CMakeFiles/psc_ir_tests.dir/tests/ir/LoopInfoTest.cpp.o.d"
  "/root/repo/tests/ir/TypeTest.cpp" "CMakeFiles/psc_ir_tests.dir/tests/ir/TypeTest.cpp.o" "gcc" "CMakeFiles/psc_ir_tests.dir/tests/ir/TypeTest.cpp.o.d"
  "/root/repo/tests/ir/VerifierTest.cpp" "CMakeFiles/psc_ir_tests.dir/tests/ir/VerifierTest.cpp.o" "gcc" "CMakeFiles/psc_ir_tests.dir/tests/ir/VerifierTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/psc_core.dir/DependInfo.cmake"
  "/root/repo/build/googletest/googletest/CMakeFiles/gtest.dir/DependInfo.cmake"
  "/root/repo/build/googletest/googletest/CMakeFiles/gtest_main.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
