file(REMOVE_RECURSE
  "CMakeFiles/psc_ir_tests.dir/tests/ir/DominatorsTest.cpp.o"
  "CMakeFiles/psc_ir_tests.dir/tests/ir/DominatorsTest.cpp.o.d"
  "CMakeFiles/psc_ir_tests.dir/tests/ir/IRBuilderTest.cpp.o"
  "CMakeFiles/psc_ir_tests.dir/tests/ir/IRBuilderTest.cpp.o.d"
  "CMakeFiles/psc_ir_tests.dir/tests/ir/LoopInfoTest.cpp.o"
  "CMakeFiles/psc_ir_tests.dir/tests/ir/LoopInfoTest.cpp.o.d"
  "CMakeFiles/psc_ir_tests.dir/tests/ir/TypeTest.cpp.o"
  "CMakeFiles/psc_ir_tests.dir/tests/ir/TypeTest.cpp.o.d"
  "CMakeFiles/psc_ir_tests.dir/tests/ir/VerifierTest.cpp.o"
  "CMakeFiles/psc_ir_tests.dir/tests/ir/VerifierTest.cpp.o.d"
  "psc_ir_tests"
  "psc_ir_tests.pdb"
  "psc_ir_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_ir_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
