# Empty dependencies file for psc_ir_tests.
# This may be replaced when dependencies are built.
