# Empty dependencies file for psc_parallel_tests.
# This may be replaced when dependencies are built.
