
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parallel/AbstractionViewTest.cpp" "CMakeFiles/psc_parallel_tests.dir/tests/parallel/AbstractionViewTest.cpp.o" "gcc" "CMakeFiles/psc_parallel_tests.dir/tests/parallel/AbstractionViewTest.cpp.o.d"
  "/root/repo/tests/parallel/LoopSCCDAGTest.cpp" "CMakeFiles/psc_parallel_tests.dir/tests/parallel/LoopSCCDAGTest.cpp.o" "gcc" "CMakeFiles/psc_parallel_tests.dir/tests/parallel/LoopSCCDAGTest.cpp.o.d"
  "/root/repo/tests/parallel/PlanEnumeratorTest.cpp" "CMakeFiles/psc_parallel_tests.dir/tests/parallel/PlanEnumeratorTest.cpp.o" "gcc" "CMakeFiles/psc_parallel_tests.dir/tests/parallel/PlanEnumeratorTest.cpp.o.d"
  "/root/repo/tests/parallel/RegionMapTest.cpp" "CMakeFiles/psc_parallel_tests.dir/tests/parallel/RegionMapTest.cpp.o" "gcc" "CMakeFiles/psc_parallel_tests.dir/tests/parallel/RegionMapTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/psc_core.dir/DependInfo.cmake"
  "/root/repo/build/googletest/googletest/CMakeFiles/gtest.dir/DependInfo.cmake"
  "/root/repo/build/googletest/googletest/CMakeFiles/gtest_main.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
