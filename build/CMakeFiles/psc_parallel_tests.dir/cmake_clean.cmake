file(REMOVE_RECURSE
  "CMakeFiles/psc_parallel_tests.dir/tests/parallel/AbstractionViewTest.cpp.o"
  "CMakeFiles/psc_parallel_tests.dir/tests/parallel/AbstractionViewTest.cpp.o.d"
  "CMakeFiles/psc_parallel_tests.dir/tests/parallel/LoopSCCDAGTest.cpp.o"
  "CMakeFiles/psc_parallel_tests.dir/tests/parallel/LoopSCCDAGTest.cpp.o.d"
  "CMakeFiles/psc_parallel_tests.dir/tests/parallel/PlanEnumeratorTest.cpp.o"
  "CMakeFiles/psc_parallel_tests.dir/tests/parallel/PlanEnumeratorTest.cpp.o.d"
  "CMakeFiles/psc_parallel_tests.dir/tests/parallel/RegionMapTest.cpp.o"
  "CMakeFiles/psc_parallel_tests.dir/tests/parallel/RegionMapTest.cpp.o.d"
  "psc_parallel_tests"
  "psc_parallel_tests.pdb"
  "psc_parallel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_parallel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
