file(REMOVE_RECURSE
  "CMakeFiles/psc_emulator_tests.dir/tests/emulator/CoverageTest.cpp.o"
  "CMakeFiles/psc_emulator_tests.dir/tests/emulator/CoverageTest.cpp.o.d"
  "CMakeFiles/psc_emulator_tests.dir/tests/emulator/CriticalPathTest.cpp.o"
  "CMakeFiles/psc_emulator_tests.dir/tests/emulator/CriticalPathTest.cpp.o.d"
  "CMakeFiles/psc_emulator_tests.dir/tests/emulator/InterpreterTest.cpp.o"
  "CMakeFiles/psc_emulator_tests.dir/tests/emulator/InterpreterTest.cpp.o.d"
  "psc_emulator_tests"
  "psc_emulator_tests.pdb"
  "psc_emulator_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_emulator_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
