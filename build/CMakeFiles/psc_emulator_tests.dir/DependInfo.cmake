
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/emulator/CoverageTest.cpp" "CMakeFiles/psc_emulator_tests.dir/tests/emulator/CoverageTest.cpp.o" "gcc" "CMakeFiles/psc_emulator_tests.dir/tests/emulator/CoverageTest.cpp.o.d"
  "/root/repo/tests/emulator/CriticalPathTest.cpp" "CMakeFiles/psc_emulator_tests.dir/tests/emulator/CriticalPathTest.cpp.o" "gcc" "CMakeFiles/psc_emulator_tests.dir/tests/emulator/CriticalPathTest.cpp.o.d"
  "/root/repo/tests/emulator/InterpreterTest.cpp" "CMakeFiles/psc_emulator_tests.dir/tests/emulator/InterpreterTest.cpp.o" "gcc" "CMakeFiles/psc_emulator_tests.dir/tests/emulator/InterpreterTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/psc_core.dir/DependInfo.cmake"
  "/root/repo/build/googletest/googletest/CMakeFiles/gtest.dir/DependInfo.cmake"
  "/root/repo/build/googletest/googletest/CMakeFiles/gtest_main.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
