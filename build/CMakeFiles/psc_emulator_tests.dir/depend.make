# Empty dependencies file for psc_emulator_tests.
# This may be replaced when dependencies are built.
