
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pspdg/CilkTest.cpp" "CMakeFiles/psc_pspdg_tests.dir/tests/pspdg/CilkTest.cpp.o" "gcc" "CMakeFiles/psc_pspdg_tests.dir/tests/pspdg/CilkTest.cpp.o.d"
  "/root/repo/tests/pspdg/NecessityTest.cpp" "CMakeFiles/psc_pspdg_tests.dir/tests/pspdg/NecessityTest.cpp.o" "gcc" "CMakeFiles/psc_pspdg_tests.dir/tests/pspdg/NecessityTest.cpp.o.d"
  "/root/repo/tests/pspdg/PSPDGBuilderTest.cpp" "CMakeFiles/psc_pspdg_tests.dir/tests/pspdg/PSPDGBuilderTest.cpp.o" "gcc" "CMakeFiles/psc_pspdg_tests.dir/tests/pspdg/PSPDGBuilderTest.cpp.o.d"
  "/root/repo/tests/pspdg/SufficiencyTest.cpp" "CMakeFiles/psc_pspdg_tests.dir/tests/pspdg/SufficiencyTest.cpp.o" "gcc" "CMakeFiles/psc_pspdg_tests.dir/tests/pspdg/SufficiencyTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/psc_core.dir/DependInfo.cmake"
  "/root/repo/build/googletest/googletest/CMakeFiles/gtest.dir/DependInfo.cmake"
  "/root/repo/build/googletest/googletest/CMakeFiles/gtest_main.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
