# Empty dependencies file for psc_pspdg_tests.
# This may be replaced when dependencies are built.
