file(REMOVE_RECURSE
  "CMakeFiles/psc_pspdg_tests.dir/tests/pspdg/CilkTest.cpp.o"
  "CMakeFiles/psc_pspdg_tests.dir/tests/pspdg/CilkTest.cpp.o.d"
  "CMakeFiles/psc_pspdg_tests.dir/tests/pspdg/NecessityTest.cpp.o"
  "CMakeFiles/psc_pspdg_tests.dir/tests/pspdg/NecessityTest.cpp.o.d"
  "CMakeFiles/psc_pspdg_tests.dir/tests/pspdg/PSPDGBuilderTest.cpp.o"
  "CMakeFiles/psc_pspdg_tests.dir/tests/pspdg/PSPDGBuilderTest.cpp.o.d"
  "CMakeFiles/psc_pspdg_tests.dir/tests/pspdg/SufficiencyTest.cpp.o"
  "CMakeFiles/psc_pspdg_tests.dir/tests/pspdg/SufficiencyTest.cpp.o.d"
  "psc_pspdg_tests"
  "psc_pspdg_tests.pdb"
  "psc_pspdg_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_pspdg_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
